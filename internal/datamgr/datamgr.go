// Package datamgr implements the VDCE Data Manager (paper §2.3.2): a
// socket-based, point-to-point communication system for inter-task
// communication. Each task gets a *communication proxy* that listens for
// inbound channels and dials outbound ones; after channel setup completes
// the proxy acknowledges to the Application Controller, which releases the
// execution startup signal (Fig 7). In the thread-based configuration each
// proxy runs a receive goroutine per inbound socket and the compute
// goroutine consumes from a merged inbound queue — the paper's send,
// receive, and compute threads.
//
// Frames are length-prefixed with a big-endian header, giving the
// byte-order-safe "data conversion" the paper requires for heterogeneous
// machines; payloads are gob-encoded tasklib Values.
package datamgr

import (
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"

	"repro/internal/netsim"
)

// Message is one inter-task data frame.
type Message struct {
	From    string // sending task id
	To      string // receiving task id
	Seq     int    // per-channel sequence number
	Payload []byte // encoded tasklib.Value
}

// Common errors.
var (
	ErrClosed      = errors.New("datamgr: proxy closed")
	ErrUnknownPeer = errors.New("datamgr: unknown peer")
	ErrFrameTooBig = errors.New("datamgr: frame exceeds limit")
)

// MaxFrameBytes bounds a single frame (defensive against corrupt headers).
const MaxFrameBytes = 1 << 30

// writeFrame emits a length-prefixed gob-encoded message. The 4-byte
// big-endian length prefix is the heterogeneity-safe wire header.
func writeFrame(w io.Writer, m Message) error {
	var buf frameBuffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return fmt.Errorf("datamgr: encode frame: %w", err)
	}
	var hdr [4]byte
	if len(buf.b) > MaxFrameBytes {
		return ErrFrameTooBig
	}
	binary.BigEndian.PutUint32(hdr[:], uint32(len(buf.b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(buf.b)
	return err
}

// readFrame reads one length-prefixed message.
func readFrame(r io.Reader) (Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Message{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameBytes {
		return Message{}, ErrFrameTooBig
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return Message{}, err
	}
	var m Message
	if err := gob.NewDecoder(&byteReader{b: body}).Decode(&m); err != nil {
		return Message{}, fmt.Errorf("datamgr: decode frame: %w", err)
	}
	return m, nil
}

type frameBuffer struct{ b []byte }

func (f *frameBuffer) Write(p []byte) (int, error) {
	f.b = append(f.b, p...)
	return len(p), nil
}

type byteReader struct {
	b []byte
	i int
}

func (r *byteReader) Read(p []byte) (int, error) {
	if r.i >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.i:])
	r.i += n
	return n, nil
}

// PeerInfo is the channel-setup information the Data Manager distributes:
// "the socket number, IP address for target machine, etc." (§2.3.2).
type PeerInfo struct {
	Task string // peer task id
	Addr string // host:port of the peer's proxy listener
	Site string // peer's VDCE site, for WAN delay injection
}

// Proxy is one task's communication proxy.
type Proxy struct {
	task string
	site string
	net  *netsim.Network

	ln      net.Listener
	inbound chan Message
	quit    chan struct{}

	mu     sync.Mutex
	outs   map[string]*outChannel // guarded by mu
	ins    []net.Conn             // accepted connections, closed on shutdown; guarded by mu
	peers  map[string]PeerInfo    // guarded by mu
	seq    map[string]int         // guarded by mu
	closed bool                   // guarded by mu
	wg     sync.WaitGroup

	stats Stats // guarded by mu
}

type outChannel struct {
	conn net.Conn
	mu   sync.Mutex
}

// Stats counts proxy traffic.
type Stats struct {
	Sent, Received       int
	BytesSent, BytesRecv int64
}

// NewProxy creates a proxy for the given task, listening on a fresh
// loopback TCP port. nw may be nil (no WAN delay injection).
func NewProxy(task, site string, nw *netsim.Network) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("datamgr: listen: %w", err)
	}
	p := &Proxy{
		task:    task,
		site:    site,
		net:     nw,
		ln:      ln,
		inbound: make(chan Message, 256),
		quit:    make(chan struct{}),
		outs:    make(map[string]*outChannel),
		peers:   make(map[string]PeerInfo),
		seq:     make(map[string]int),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Task returns the owning task id.
func (p *Proxy) Task() string { return p.task }

// Addr returns the proxy's listen address for PeerInfo distribution.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			return
		}
		p.ins = append(p.ins, conn)
		p.mu.Unlock()
		p.wg.Add(1)
		go p.recvLoop(conn)
	}
}

// recvLoop is the paper's "receive thread": one per inbound socket, feeding
// the shared inbound queue the compute goroutine reads.
func (p *Proxy) recvLoop(conn net.Conn) {
	defer p.wg.Done()
	defer conn.Close()
	for {
		m, err := readFrame(conn)
		if err != nil {
			return
		}
		p.mu.Lock()
		closed := p.closed
		if !closed {
			p.stats.Received++
			p.stats.BytesRecv += int64(len(m.Payload))
		}
		p.mu.Unlock()
		if closed {
			return
		}
		select {
		case p.inbound <- m:
		case <-p.quit:
			return
		}
	}
}

// ConnectTo establishes the outbound channel to a peer proxy (the Fig 7
// "Requesting the Communication Channel Setup" step). It is idempotent.
func (p *Proxy) ConnectTo(peer PeerInfo) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	if _, ok := p.outs[peer.Task]; ok {
		p.mu.Unlock()
		return nil
	}
	p.peers[peer.Task] = peer
	p.mu.Unlock()

	conn, err := net.Dial("tcp", peer.Addr)
	if err != nil {
		return fmt.Errorf("datamgr: dial %s (%s): %w", peer.Task, peer.Addr, err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		conn.Close()
		return ErrClosed
	}
	p.outs[peer.Task] = &outChannel{conn: conn}
	return nil
}

// Send ships a payload to the named peer task over its established channel,
// injecting the modelled WAN delay for cross-site sends (the "send thread").
func (p *Proxy) Send(target string, payload []byte) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	out, ok := p.outs[target]
	peer := p.peers[target]
	if !ok {
		p.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownPeer, target)
	}
	p.seq[target]++
	seq := p.seq[target]
	p.stats.Sent++
	p.stats.BytesSent += int64(len(payload))
	p.mu.Unlock()

	if p.net != nil && peer.Site != "" && peer.Site != p.site {
		p.net.InjectDelay(p.site, peer.Site, int64(len(payload)))
	}
	out.mu.Lock()
	defer out.mu.Unlock()
	return writeFrame(out.conn, Message{From: p.task, To: target, Seq: seq, Payload: payload})
}

// Recv returns the next inbound message; ok=false after Close drains.
func (p *Proxy) Recv() (Message, bool) {
	m, ok := <-p.inbound
	return m, ok
}

// TryRecv returns a message if one is queued, without blocking.
func (p *Proxy) TryRecv() (Message, bool) {
	select {
	case m, ok := <-p.inbound:
		return m, ok
	default:
		return Message{}, false
	}
}

// Stats returns a copy of the traffic counters.
func (p *Proxy) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Close tears down the listener and all channels.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	outs := p.outs
	p.outs = map[string]*outChannel{}
	ins := p.ins
	p.ins = nil
	p.mu.Unlock()

	close(p.quit)
	p.ln.Close()
	names := make([]string, 0, len(outs))
	for name := range outs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		outs[name].conn.Close()
	}
	for _, c := range ins {
		c.Close()
	}
	p.wg.Wait()
	close(p.inbound)
}
