package datamgr

import (
	"bytes"
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/netsim"
)

func newTestProxy(t *testing.T, task, site string, nw *netsim.Network) *Proxy {
	t.Helper()
	p, err := NewProxy(task, site, nw)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func connect(t *testing.T, from, to *Proxy) {
	t.Helper()
	err := from.ConnectTo(PeerInfo{Task: to.Task(), Addr: to.Addr(), Site: "syr"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Message{From: "a", To: "b", Seq: 3, Payload: []byte("hello")}
	if err := writeFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.From != "a" || out.To != "b" || out.Seq != 3 || string(out.Payload) != "hello" {
		t.Fatalf("out = %+v", out)
	}
}

func TestReadFrameRejectsHugeHeader(t *testing.T) {
	buf := bytes.NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0})
	if _, err := readFrame(buf); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("err = %v", err)
	}
}

func TestProxySendRecv(t *testing.T) {
	a := newTestProxy(t, "taskA", "syr", nil)
	b := newTestProxy(t, "taskB", "syr", nil)
	connect(t, a, b)
	if err := a.Send("taskB", []byte("payload-1")); err != nil {
		t.Fatal(err)
	}
	m, ok := b.Recv()
	if !ok {
		t.Fatal("recv failed")
	}
	if m.From != "taskA" || string(m.Payload) != "payload-1" || m.Seq != 1 {
		t.Fatalf("m = %+v", m)
	}
}

func TestProxySequenceNumbers(t *testing.T) {
	a := newTestProxy(t, "a", "syr", nil)
	b := newTestProxy(t, "b", "syr", nil)
	connect(t, a, b)
	for i := 0; i < 5; i++ {
		if err := a.Send("b", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 5; i++ {
		m, ok := b.Recv()
		if !ok || m.Seq != i {
			t.Fatalf("seq = %d (ok=%v), want %d", m.Seq, ok, i)
		}
	}
}

func TestProxyFanIn(t *testing.T) {
	// Matrix Inversion on two machines feeding Matrix Mult (paper Fig 7):
	// many senders, one receiver, single inbound queue.
	recv := newTestProxy(t, "mult", "syr", nil)
	s1 := newTestProxy(t, "inv1", "syr", nil)
	s2 := newTestProxy(t, "inv2", "syr", nil)
	connect(t, s1, recv)
	connect(t, s2, recv)
	if err := s1.Send("mult", []byte("from-1")); err != nil {
		t.Fatal(err)
	}
	if err := s2.Send("mult", []byte("from-2")); err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for i := 0; i < 2; i++ {
		m, ok := recv.Recv()
		if !ok {
			t.Fatal("recv closed early")
		}
		got[m.From] = true
	}
	if !got["inv1"] || !got["inv2"] {
		t.Fatalf("senders = %v", got)
	}
}

func TestProxySendUnknownPeer(t *testing.T) {
	a := newTestProxy(t, "a", "syr", nil)
	if err := a.Send("ghost", nil); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("err = %v", err)
	}
}

func TestProxyConnectIdempotent(t *testing.T) {
	a := newTestProxy(t, "a", "syr", nil)
	b := newTestProxy(t, "b", "syr", nil)
	connect(t, a, b)
	connect(t, a, b) // second call is a no-op
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if m, ok := b.Recv(); !ok || string(m.Payload) != "x" {
		t.Fatalf("m = %+v ok=%v", m, ok)
	}
}

func TestProxyCloseRejectsOperations(t *testing.T) {
	a, err := NewProxy("a", "syr", nil)
	if err != nil {
		t.Fatal(err)
	}
	b := newTestProxy(t, "b", "syr", nil)
	connect(t, a, b)
	a.Close()
	a.Close() // double close is safe
	if err := a.Send("b", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v", err)
	}
	if err := a.ConnectTo(PeerInfo{Task: "b", Addr: b.Addr()}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v", err)
	}
	if _, ok := a.Recv(); ok {
		t.Fatal("recv on closed proxy should drain to not-ok")
	}
}

func TestProxyConnectDialError(t *testing.T) {
	a := newTestProxy(t, "a", "syr", nil)
	// Grab a port and close it so the dial fails fast.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	if err := a.ConnectTo(PeerInfo{Task: "dead", Addr: addr}); err == nil {
		t.Fatal("expected dial error")
	}
}

func TestProxyStats(t *testing.T) {
	a := newTestProxy(t, "a", "syr", nil)
	b := newTestProxy(t, "b", "syr", nil)
	connect(t, a, b)
	payload := bytes.Repeat([]byte("z"), 1000)
	if err := a.Send("b", payload); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Recv(); !ok {
		t.Fatal("recv")
	}
	as, bs := a.Stats(), b.Stats()
	if as.Sent != 1 || as.BytesSent != 1000 {
		t.Fatalf("a stats = %+v", as)
	}
	if bs.Received != 1 || bs.BytesRecv != 1000 {
		t.Fatalf("b stats = %+v", bs)
	}
}

func TestProxyWANDelayInjection(t *testing.T) {
	nw := netsim.New(netsim.DefaultLAN, 1) // unscaled
	nw.Connect("syr", "rome", netsim.PathSpec{Latency: 30 * time.Millisecond, Bandwidth: 1e9})
	a := newTestProxy(t, "a", "syr", nw)
	b := newTestProxy(t, "b", "rome", nw)
	if err := a.ConnectTo(PeerInfo{Task: "b", Addr: b.Addr(), Site: "rome"}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Recv(); !ok {
		t.Fatal("recv")
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("WAN delay not injected: %v", elapsed)
	}
}

func TestProxyTryRecv(t *testing.T) {
	a := newTestProxy(t, "a", "syr", nil)
	if _, ok := a.TryRecv(); ok {
		t.Fatal("empty TryRecv should be not-ok")
	}
	b := newTestProxy(t, "b", "syr", nil)
	connect(t, b, a)
	if err := b.Send("a", []byte("y")); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(2 * time.Second)
	for {
		if m, ok := a.TryRecv(); ok {
			if string(m.Payload) != "y" {
				t.Fatalf("m = %+v", m)
			}
			return
		}
		select {
		case <-deadline:
			t.Fatal("message never arrived")
		case <-time.After(time.Millisecond):
		}
	}
}

func TestConcurrentSends(t *testing.T) {
	recv := newTestProxy(t, "sink", "syr", nil)
	const senders, msgs = 8, 50
	var wg sync.WaitGroup
	for i := 0; i < senders; i++ {
		p := newTestProxy(t, string(rune('a'+i)), "syr", nil)
		connect(t, p, recv)
		wg.Add(1)
		go func(p *Proxy) {
			defer wg.Done()
			for j := 0; j < msgs; j++ {
				if err := p.Send("sink", []byte{byte(j)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	done := make(chan struct{})
	go func() {
		for i := 0; i < senders*msgs; i++ {
			if _, ok := recv.Recv(); !ok {
				t.Error("recv closed early")
				return
			}
		}
		close(done)
	}()
	wg.Wait()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("messages lost")
	}
	if s := recv.Stats(); s.Received != senders*msgs {
		t.Fatalf("received = %d", s.Received)
	}
}

// --- services ---------------------------------------------------------------

func TestGatePauseResume(t *testing.T) {
	g := NewGate()
	if g.Paused() {
		t.Fatal("fresh gate should run")
	}
	if err := g.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	g.Pause()
	g.Pause() // idempotent
	if !g.Paused() {
		t.Fatal("not paused")
	}
	released := make(chan error, 1)
	go func() { released <- g.Wait(context.Background()) }()
	select {
	case <-released:
		t.Fatal("Wait returned while paused")
	case <-time.After(20 * time.Millisecond):
	}
	g.Resume()
	select {
	case err := <-released:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Resume did not release waiter")
	}
}

func TestGateWaitContextCancel(t *testing.T) {
	g := NewGate()
	g.Pause()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := g.Wait(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
}

func TestIOServiceFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "input.dat")
	if err := os.WriteFile(path, []byte("file-bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	var s IOService
	for _, uri := range []string{path, "file://" + path} {
		data, err := s.ReadInput(uri)
		if err != nil {
			t.Fatalf("%s: %v", uri, err)
		}
		if string(data) != "file-bytes" {
			t.Fatalf("%s: data = %q", uri, data)
		}
	}
	if _, err := s.ReadInput(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestIOServiceData(t *testing.T) {
	var s IOService
	data, err := s.ReadInput("data:inline-literal")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "inline-literal" {
		t.Fatalf("data = %q", data)
	}
}

func TestIOServiceURL(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/missing" {
			http.NotFound(w, r)
			return
		}
		w.Write([]byte("url-bytes"))
	}))
	defer srv.Close()
	s := IOService{Client: srv.Client()}
	data, err := s.ReadInput(srv.URL + "/input")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "url-bytes" {
		t.Fatalf("data = %q", data)
	}
	if _, err := s.ReadInput(srv.URL + "/missing"); err == nil {
		t.Fatal("404 accepted")
	}
}

func TestIOServiceLimit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "big")
	if err := os.WriteFile(path, bytes.Repeat([]byte("x"), 100), 0o644); err != nil {
		t.Fatal(err)
	}
	s := IOService{MaxBytes: 10}
	if _, err := s.ReadInput(path); err == nil {
		t.Fatal("oversized input accepted")
	}
}
