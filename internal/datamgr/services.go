package datamgr

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
)

// Gate implements the VDCE console service: "the user can suspend and
// restart the application execution with the console service" (§2.3.2).
// Task executors call Wait before starting each task; Pause blocks them,
// Resume releases them.
type Gate struct {
	mu     sync.Mutex
	paused bool
	ch     chan struct{} // closed when running; replaced when paused
}

// NewGate returns a gate in the running state.
func NewGate() *Gate {
	ch := make(chan struct{})
	close(ch)
	return &Gate{ch: ch}
}

// Pause suspends execution: subsequent Wait calls block.
func (g *Gate) Pause() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.paused {
		g.paused = true
		g.ch = make(chan struct{})
	}
}

// Resume releases all waiters.
func (g *Gate) Resume() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.paused {
		g.paused = false
		close(g.ch)
	}
}

// Paused reports the current state.
func (g *Gate) Paused() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.paused
}

// Wait blocks while the gate is paused, or until ctx is done.
func (g *Gate) Wait(ctx context.Context) error {
	for {
		g.mu.Lock()
		ch := g.ch
		g.mu.Unlock()
		select {
		case <-ch:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// IOService provides the paper's I/O service: "either file I/O or URL I/O
// for the inputs of the application tasks".
type IOService struct {
	// Client serves URL I/O; nil uses http.DefaultClient. Tests inject a
	// stub; real deployments reach site-local HTTP repositories.
	Client *http.Client
	// MaxBytes caps one input (0 = 64 MiB).
	MaxBytes int64
}

// ReadInput fetches the bytes behind a task-input reference:
//
//	file://<path> or a bare path — local file I/O
//	http://...                   — URL I/O
//	data:<literal>               — inline literal (testing convenience)
func (s *IOService) ReadInput(uri string) ([]byte, error) {
	limit := s.MaxBytes
	if limit <= 0 {
		limit = 64 << 20
	}
	switch {
	case strings.HasPrefix(uri, "data:"):
		return []byte(strings.TrimPrefix(uri, "data:")), nil
	case strings.HasPrefix(uri, "http://"), strings.HasPrefix(uri, "https://"):
		client := s.Client
		if client == nil {
			client = http.DefaultClient
		}
		resp, err := client.Get(uri)
		if err != nil {
			return nil, fmt.Errorf("datamgr: url input %s: %w", uri, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("datamgr: url input %s: status %s", uri, resp.Status)
		}
		return readCapped(resp.Body, limit)
	default:
		path := strings.TrimPrefix(uri, "file://")
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("datamgr: file input: %w", err)
		}
		defer f.Close()
		return readCapped(f, limit)
	}
}

func readCapped(r io.Reader, limit int64) ([]byte, error) {
	data, err := io.ReadAll(io.LimitReader(r, limit+1))
	if err != nil {
		return nil, err
	}
	if int64(len(data)) > limit {
		return nil, fmt.Errorf("datamgr: input exceeds %d byte limit", limit)
	}
	return data, nil
}
