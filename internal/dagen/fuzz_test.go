package dagen

import (
	"testing"

	"repro/internal/afg"
)

// FuzzDagenValid fuzzes the parametric generator over its whole knob space:
// whatever the knobs, the generated graph must have exactly the requested
// task count, validate (non-empty, acyclic), be one weakly-connected
// component, and survive a JSON round trip unchanged — the editor/scheduler
// wire contract. Run the smoke in CI with:
//
//	go test -run=NONE -fuzz=FuzzDagenValid -fuzztime=10s ./internal/dagen
func FuzzDagenValid(f *testing.F) {
	f.Add(uint8(10), uint8(8), uint8(4), uint8(3), int64(1))
	f.Add(uint8(1), uint8(0), uint8(1), uint8(0), int64(0))
	f.Add(uint8(120), uint8(40), uint8(16), uint8(7), int64(-5))
	f.Add(uint8(2), uint8(255), uint8(255), uint8(255), int64(1<<62))
	f.Fuzz(func(t *testing.T, tasksB, ccrB, alphaB, outdegB uint8, seed int64) {
		p := Params{
			Tasks:     1 + int(tasksB)%150,
			CCR:       float64(ccrB) / 8,    // 0 .. ~32
			Alpha:     float64(alphaB) / 32, // 0 (defaulted) .. ~8
			OutDegree: int(outdegB) % 9,     // 0 (defaulted) .. 8
			Seed:      seed,
		}
		g := Random(p)
		if g.Len() != p.Tasks {
			t.Fatalf("%+v: %d tasks, want %d", p, g.Len(), p.Tasks)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
		if !connected(g) {
			t.Fatalf("%+v: graph not connected", p)
		}
		if p.Tasks >= 2 {
			if en := g.Entries(); len(en) != 1 {
				t.Fatalf("%+v: %d entries", p, len(en))
			}
			if ex := g.Exits(); len(ex) != 1 {
				t.Fatalf("%+v: %d exits", p, len(ex))
			}
		}

		data, err := g.Encode()
		if err != nil {
			t.Fatalf("%+v: encode: %v", p, err)
		}
		back, err := afg.Decode(data)
		if err != nil {
			t.Fatalf("%+v: decode: %v", p, err)
		}
		if back.Name != g.Name || back.Len() != g.Len() {
			t.Fatalf("%+v: round trip changed shape", p)
		}
		for _, id := range g.TaskIDs() {
			a, b := g.Task(id), back.Task(id)
			//vdce:ignore floateq serialization round trip: costs must come back bit-identical
			if b == nil || a.ComputeCost != b.ComputeCost || a.Function != b.Function {
				t.Fatalf("%+v: task %q drifted in round trip", p, id)
			}
		}
		al, bl := g.Links(), back.Links()
		if len(al) != len(bl) {
			t.Fatalf("%+v: link count drifted: %d vs %d", p, len(al), len(bl))
		}
		for i := range al {
			if al[i] != bl[i] {
				t.Fatalf("%+v: link %d drifted: %+v vs %+v", p, i, al[i], bl[i])
			}
		}
	})
}
