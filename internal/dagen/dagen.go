// Package dagen generates the parameterized task graphs the evaluation
// methodology of Topcuoglu et al. scores schedulers on: random DAGs shaped
// by the paper's five knobs — task count v, communication-to-computation
// ratio CCR, shape parameter α, out-degree, and host-heterogeneity range β —
// plus the structured application graphs (Gaussian elimination, FFT) used
// alongside them. Every generator is seeded and deterministic: the same
// Params always produce the same afg.Graph, which is what lets the RANKING
// experiment commit golden results and lets property tests replay failures.
//
// Knob semantics (the classic random-graph suite):
//
//   - Tasks (v): exact node count, including the single entry and single
//     exit task the generator adds so every graph is connected.
//   - CCR: the ratio of the mean communication cost to the mean computation
//     cost. Edge weights are drawn in seconds (uniform on [0, 2·CCR·w̄]) and
//     converted to bytes through CommBandwidth, so a network whose WAN paths
//     run at that bandwidth realises roughly the requested ratio.
//   - Alpha (α): shape. The number of interior levels is √v/α, so α < 1
//     yields long, skinny graphs (high depth, low parallelism) and α > 1
//     yields short, fat ones.
//   - OutDegree: cap on the random fan-out wired from each task into the
//     next level (connectivity fix-ups may add one extra parent per task).
//   - Beta (β): host heterogeneity, consumed by SpeedFactors — per-host time
//     multipliers are uniform on [1−β/2, 1+β/2], so β = 0 is a homogeneous
//     pool and larger β widens the spread between fastest and slowest host.
package dagen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/afg"
)

// Params parameterises Random. Zero fields take the documented defaults.
type Params struct {
	Tasks int // total task count v, entry and exit included (min 1)
	//vdce:unit ratio
	CCR       float64 // mean communication / mean computation (0 = no data)
	Alpha     float64 // shape: interior levels ≈ √v/α (default 1)
	OutDegree int     // max random fan-out per task into the next level (default 3)
	Beta      float64 // host-heterogeneity range, read by SpeedFactors

	// MeanCost is w̄, the average computation cost in seconds on the base
	// processor; task costs are uniform on (0, 2·w̄]. Default 1.
	//vdce:unit seconds
	MeanCost float64

	// CommBandwidth converts edge costs from seconds to bytes
	// (bytes = seconds × bandwidth); it should match the WAN bandwidth of
	// the network the graph is scheduled against. Default 1e7 — the star-WAN
	// bandwidth the RANKING and POLICY experiments use.
	//vdce:unit bytes/s
	CommBandwidth float64

	Seed int64
}

// withDefaults fills the documented defaults in place of zero fields.
func (p Params) withDefaults() Params {
	if p.Tasks < 1 {
		p.Tasks = 1
	}
	if p.Alpha <= 0 {
		p.Alpha = 1
	}
	if p.OutDegree < 1 {
		p.OutDegree = 3
	}
	if p.MeanCost <= 0 {
		p.MeanCost = 1
	}
	if p.CommBandwidth <= 0 {
		p.CommBandwidth = 1e7
	}
	if p.CCR < 0 {
		p.CCR = 0
	}
	return p
}

// Random builds a seeded random DAG with exactly p.Tasks tasks: one entry,
// one exit, and interior tasks spread over √v/α levels. Every interior task
// has at least one parent in the previous level and at least one child
// (childless interiors are wired to the exit), so the graph is always
// connected, single-entry, single-exit, and acyclic by construction.
func Random(p Params) *afg.Graph {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	g := afg.NewSized(fmt.Sprintf("dagen-v%d-ccr%g-a%g", p.Tasks, p.CCR, p.Alpha), p.Tasks)

	v := p.Tasks
	ids := make([]afg.TaskID, v)
	for i := range ids {
		ids[i] = afg.TaskID(fmt.Sprintf("t%05d", i))
		g.AddTask(&afg.Task{
			ID:          ids[i],
			Function:    "synthetic.noop",
			ComputeCost: taskCost(rng, p.MeanCost),
		})
	}
	if v == 1 {
		return g
	}
	entry, exit := ids[0], ids[v-1]
	interior := ids[1 : v-1]
	if len(interior) == 0 { // v == 2: entry -> exit
		g.AddLink(afg.Link{From: entry, To: exit, Bytes: commBytes(rng, p)})
		return g
	}

	// Level layout: √(interior)/α levels, each owning ≥ 1 task; the rest of
	// the interior tasks land on uniformly random levels.
	levels := int(math.Round(math.Sqrt(float64(len(interior))) / p.Alpha))
	if levels < 1 {
		levels = 1
	}
	if levels > len(interior) {
		levels = len(interior)
	}
	byLevel := make([][]afg.TaskID, levels)
	for i, id := range interior {
		l := i % levels // every level seeded with one task first
		if i >= levels {
			l = rng.Intn(levels)
		}
		byLevel[l] = append(byLevel[l], id)
	}

	// Random fan-out: each task wires up to OutDegree distinct children in
	// the next level. Then the connectivity fix-ups below guarantee every
	// interior task has a parent and a child.
	for l := 0; l < levels-1; l++ {
		next := byLevel[l+1]
		for _, from := range byLevel[l] {
			deg := 1 + rng.Intn(p.OutDegree)
			if deg > len(next) {
				deg = len(next)
			}
			for _, k := range rng.Perm(len(next))[:deg] {
				g.AddLink(afg.Link{From: from, To: next[k], Bytes: commBytes(rng, p)})
			}
		}
	}
	// Level 0 hangs off the entry task; deeper parentless tasks adopt a
	// random parent from the previous level.
	for _, id := range byLevel[0] {
		g.AddLink(afg.Link{From: entry, To: id, Bytes: commBytes(rng, p)})
	}
	for l := 1; l < levels; l++ {
		prev := byLevel[l-1]
		for _, id := range byLevel[l] {
			if len(g.Parents(id)) == 0 {
				g.AddLink(afg.Link{From: prev[rng.Intn(len(prev))], To: id, Bytes: commBytes(rng, p)})
			}
		}
	}
	// Childless interior tasks feed the exit.
	for _, id := range interior {
		if len(g.Children(id)) == 0 {
			g.AddLink(afg.Link{From: id, To: exit, Bytes: commBytes(rng, p)})
		}
	}
	return g
}

// taskCost draws one computation cost: uniform on (0, 2·w̄], floored away
// from zero so prediction never sees a free task.
func taskCost(rng *rand.Rand, mean float64) float64 {
	c := 2 * mean * rng.Float64()
	if c < 1e-3 {
		c = 1e-3
	}
	return c
}

// commBytes draws one edge volume: a communication cost uniform on
// [0, 2·CCR·w̄] seconds, converted to bytes at the reference bandwidth.
func commBytes(rng *rand.Rand, p Params) int64 {
	if p.CCR <= 0 {
		return 0
	}
	return int64(2 * p.CCR * p.MeanCost * rng.Float64() * p.CommBandwidth)
}

// SpeedFactors derives n host speed factors from the heterogeneity range β:
// each host's execution-time multiplier is uniform on [1−β/2, 1+β/2]
// (floored at 0.1), and the speed factor is its reciprocal — so β = 0 gives
// a homogeneous pool and β = 2 spans roughly 20× between the fastest and
// slowest host, mirroring the paper's processor-heterogeneity sweep.
func SpeedFactors(n int, beta float64, seed int64) []float64 {
	if beta < 0 {
		beta = 0
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		mult := 1 + beta*(rng.Float64()-0.5)
		if mult < 0.1 {
			mult = 0.1
		}
		out[i] = 1 / mult
	}
	return out
}

// Scale builds a layered DAG of exactly `tasks` tasks (width tasks per rank,
// the last rank padded short) whose cost/memory/output parameters are drawn
// from a catalogue of `kinds` distinct task profiles — the shape of a real
// task library, where thousands of task instances share a handful of
// function configurations. The SCALE/LEDGER/POLICY workloads are built from
// it: repeated profiles are what a (kind, size, resource)-keyed prediction
// cache can exploit. (Moved verbatim from package workload so every seeded
// generator lives here; the RNG consumption is unchanged, so graphs are
// bit-identical to the pre-move ones.)
func Scale(tasks, width, kinds int, seed int64) *afg.Graph {
	if tasks < 1 {
		tasks = 1
	}
	if width < 1 {
		width = 1
	}
	if kinds < 1 {
		kinds = 1
	}
	rng := rand.New(rand.NewSource(seed))
	type profile struct {
		cost  float64
		mem   int64
		bytes int64
	}
	catalogue := make([]profile, kinds)
	for i := range catalogue {
		catalogue[i] = profile{
			cost:  0.1 + rng.Float64()*4,
			mem:   int64(1+rng.Intn(64)) << 20,
			bytes: int64(1+rng.Intn(16)) << 10,
		}
	}
	g := afg.NewSized(fmt.Sprintf("scale-%d", tasks), tasks)
	var prev []afg.TaskID
	for made := 0; made < tasks; {
		n := width
		if rem := tasks - made; n > rem {
			n = rem
		}
		var cur []afg.TaskID
		for i := 0; i < n; i++ {
			id := afg.TaskID(fmt.Sprintf("t%05d", made))
			p := catalogue[rng.Intn(kinds)]
			g.AddTask(&afg.Task{
				ID: id, Function: "synthetic.noop",
				ComputeCost: p.cost, MemReq: p.mem, OutputBytes: p.bytes,
			})
			cur = append(cur, id)
			made++
		}
		for _, c := range cur {
			if len(prev) == 0 {
				continue
			}
			// Sparse rank-to-rank wiring: every task gets one parent plus a
			// second with probability 1/4, keeping edges linear in tasks.
			p := prev[rng.Intn(len(prev))]
			g.AddLink(afg.Link{From: p, To: c, Bytes: g.Task(p).OutputBytes})
			if rng.Intn(4) == 0 {
				if q := prev[rng.Intn(len(prev))]; q != p {
					g.AddLink(afg.Link{From: q, To: c, Bytes: g.Task(q).OutputBytes})
				}
			}
		}
		prev = cur
	}
	return g
}
