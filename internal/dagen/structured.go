package dagen

import (
	"fmt"
	"math/rand"

	"repro/internal/afg"
)

// The structured application graphs of the evaluation suite. Their shapes
// are fixed by the algorithm (only costs and edge volumes are seeded), which
// is exactly why the paper scores schedulers on them next to the random
// suite: the random knobs cannot produce their characteristic skew — the
// shrinking fan-out of Gaussian elimination, the butterfly of the FFT.

// GaussianElimination builds the task graph of Gaussian elimination on an
// m×m matrix: for each elimination step k there is one pivot task and m−k
// row-update tasks; the pivot of step k+1 depends on step k's first update,
// and each update depends on its step's pivot plus the same-column update of
// the previous step. Total tasks: (m² + m − 2)/2. Costs and edge volumes are
// drawn from p's MeanCost/CCR knobs (p.Tasks and shape knobs are ignored —
// the matrix size fixes the shape).
func GaussianElimination(m int, p Params) (*afg.Graph, error) {
	if m < 2 {
		return nil, fmt.Errorf("dagen: gaussian elimination needs m >= 2, got %d", m)
	}
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	g := afg.New(fmt.Sprintf("gauss-m%d", m))

	pivot := func(k int) afg.TaskID { return afg.TaskID(fmt.Sprintf("p%03d", k)) }
	update := func(k, j int) afg.TaskID { return afg.TaskID(fmt.Sprintf("u%03d-%03d", k, j)) }

	add := func(id afg.TaskID) {
		g.AddTask(&afg.Task{
			ID:          id,
			Function:    "synthetic.noop",
			ComputeCost: taskCost(rng, p.MeanCost),
		})
	}
	link := func(from, to afg.TaskID) {
		g.AddLink(afg.Link{From: from, To: to, Bytes: commBytes(rng, p)})
	}

	for k := 1; k < m; k++ {
		add(pivot(k))
		for j := k + 1; j <= m; j++ {
			add(update(k, j))
		}
	}
	for k := 1; k < m; k++ {
		if k > 1 {
			link(update(k-1, k), pivot(k)) // step k pivots on the previous step's first column
		}
		for j := k + 1; j <= m; j++ {
			link(pivot(k), update(k, j))
			if k > 1 {
				link(update(k-1, j), update(k, j))
			}
		}
	}
	return g, nil
}

// FFT builds the task graph of a radix-2 fast Fourier transform on `points`
// input points (a power of two): the recursive-call binary tree (2·points−1
// tasks, the root is the single entry) followed by log₂(points) butterfly
// levels of `points` tasks each, every butterfly reading its own lane and
// its stride partner. Total tasks: 2·points − 1 + points·log₂(points).
func FFT(points int, p Params) (*afg.Graph, error) {
	if points < 2 || points&(points-1) != 0 {
		return nil, fmt.Errorf("dagen: FFT needs a power-of-two point count >= 2, got %d", points)
	}
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	g := afg.New(fmt.Sprintf("fft-n%d", points))

	add := func(id afg.TaskID) {
		g.AddTask(&afg.Task{
			ID:          id,
			Function:    "synthetic.noop",
			ComputeCost: taskCost(rng, p.MeanCost),
		})
	}
	link := func(from, to afg.TaskID) {
		g.AddLink(afg.Link{From: from, To: to, Bytes: commBytes(rng, p)})
	}

	logn := 0
	for 1<<logn < points {
		logn++
	}
	// Divide phase: binary tree, level d has 2^d call tasks.
	call := func(d, i int) afg.TaskID { return afg.TaskID(fmt.Sprintf("c%02d-%04d", d, i)) }
	for d := 0; d <= logn; d++ {
		for i := 0; i < 1<<d; i++ {
			add(call(d, i))
			if d > 0 {
				link(call(d-1, i/2), call(d, i))
			}
		}
	}
	// Butterfly phase: level l combines lanes at stride 2^(l-1); every lane
	// reads itself and its partner from the level below (the tree leaves for
	// l = 1).
	fly := func(l, i int) afg.TaskID { return afg.TaskID(fmt.Sprintf("b%02d-%04d", l, i)) }
	for l := 1; l <= logn; l++ {
		stride := 1 << (l - 1)
		for i := 0; i < points; i++ {
			add(fly(l, i))
		}
		for i := 0; i < points; i++ {
			self, partner := i, i^stride
			if l == 1 {
				link(call(logn, self), fly(l, i))
				link(call(logn, partner), fly(l, i))
			} else {
				link(fly(l-1, self), fly(l, i))
				link(fly(l-1, partner), fly(l, i))
			}
		}
	}
	return g, nil
}
