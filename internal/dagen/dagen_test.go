package dagen

import (
	"math"
	"testing"

	"repro/internal/afg"
)

func TestRandomExactSizeAndShape(t *testing.T) {
	for _, v := range []int{1, 2, 3, 10, 40, 120} {
		g := Random(Params{Tasks: v, CCR: 1, Alpha: 1, OutDegree: 3, Seed: int64(v)})
		if g.Len() != v {
			t.Fatalf("v=%d: got %d tasks", v, g.Len())
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("v=%d: %v", v, err)
		}
		if v >= 2 {
			if en := g.Entries(); len(en) != 1 {
				t.Fatalf("v=%d: entries = %v, want single entry", v, en)
			}
			if ex := g.Exits(); len(ex) != 1 {
				t.Fatalf("v=%d: exits = %v, want single exit", v, ex)
			}
		}
		if !connected(g) {
			t.Fatalf("v=%d: graph not connected", v)
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	p := Params{Tasks: 50, CCR: 2, Alpha: 0.5, OutDegree: 4, Seed: 7}
	a, b := Random(p), Random(p)
	if a.Len() != b.Len() || len(a.Links()) != len(b.Links()) {
		t.Fatal("same Params produced different graphs")
	}
	al, bl := a.Links(), b.Links()
	for i := range al {
		if al[i] != bl[i] {
			t.Fatalf("link %d differs: %+v vs %+v", i, al[i], bl[i])
		}
	}
	if Random(Params{Tasks: 50, CCR: 2, Alpha: 0.5, OutDegree: 4, Seed: 8}).Len() != 50 {
		t.Fatal("seed must not change the task count")
	}
}

// Alpha shapes the graph: small α ⇒ deep and skinny, large α ⇒ short and
// wide. Compare realized depth (critical-path hops) across the extremes.
func TestRandomAlphaControlsDepth(t *testing.T) {
	deep := Random(Params{Tasks: 100, Alpha: 0.5, Seed: 3})
	wide := Random(Params{Tasks: 100, Alpha: 2, Seed: 3})
	if dd, dw := depth(t, deep), depth(t, wide); dd <= dw {
		t.Fatalf("alpha=0.5 depth %d not greater than alpha=2 depth %d", dd, dw)
	}
}

// CCR controls the communication volume: the mean edge cost in seconds (at
// the reference bandwidth) over the mean task cost should track the knob.
func TestRandomCCRRealized(t *testing.T) {
	for _, ccr := range []float64{0.1, 1, 5} {
		p := Params{Tasks: 300, CCR: ccr, Seed: 11}.withDefaults()
		g := Random(p)
		var comm, comp float64
		links := g.Links()
		for _, l := range links {
			comm += float64(l.Bytes) / p.CommBandwidth
		}
		for _, id := range g.TaskIDs() {
			comp += g.Task(id).ComputeCost
		}
		got := (comm / float64(len(links))) / (comp / float64(g.Len()))
		if got < ccr*0.5 || got > ccr*1.5 {
			t.Fatalf("CCR %g realized as %g", ccr, got)
		}
	}
	// CCR 0 means no data at all.
	for _, l := range Random(Params{Tasks: 50, CCR: 0, Seed: 1}).Links() {
		if l.Bytes != 0 {
			t.Fatalf("CCR=0 produced a %d-byte link", l.Bytes)
		}
	}
}

func TestSpeedFactors(t *testing.T) {
	homo := SpeedFactors(8, 0, 1)
	for _, s := range homo {
		if s != 1 {
			t.Fatalf("beta=0 must be homogeneous, got %v", homo)
		}
	}
	hetero := SpeedFactors(64, 1.5, 1)
	min, max := math.Inf(1), math.Inf(-1)
	for _, s := range hetero {
		if s <= 0 {
			t.Fatalf("non-positive speed %v", s)
		}
		min, max = math.Min(min, s), math.Max(max, s)
	}
	if max/min < 2 {
		t.Fatalf("beta=1.5 spread too narrow: [%v, %v]", min, max)
	}
}

func TestGaussianEliminationShape(t *testing.T) {
	for _, m := range []int{2, 4, 7} {
		g, err := GaussianElimination(m, Params{CCR: 1, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if want := (m*m + m - 2) / 2; g.Len() != want {
			t.Fatalf("m=%d: %d tasks, want %d", m, g.Len(), want)
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		if !connected(g) {
			t.Fatalf("m=%d: not connected", m)
		}
		// Single entry (the first pivot) and single exit (the last update).
		if en := g.Entries(); len(en) != 1 || en[0] != "p001" {
			t.Fatalf("m=%d: entries = %v", m, en)
		}
		if ex := g.Exits(); len(ex) != 1 {
			t.Fatalf("m=%d: exits = %v", m, ex)
		}
	}
	if _, err := GaussianElimination(1, Params{}); err == nil {
		t.Fatal("m=1 must error")
	}
}

func TestFFTShape(t *testing.T) {
	for points, logn := range map[int]int{2: 1, 8: 3, 16: 4} {
		g, err := FFT(points, Params{CCR: 0.5, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		if want := 2*points - 1 + points*logn; g.Len() != want {
			t.Fatalf("n=%d: %d tasks, want %d", points, g.Len(), want)
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		if !connected(g) {
			t.Fatalf("n=%d: not connected", points)
		}
		if en := g.Entries(); len(en) != 1 || en[0] != "c00-0000" {
			t.Fatalf("n=%d: entries = %v", points, en)
		}
		if ex := g.Exits(); len(ex) != points {
			t.Fatalf("n=%d: %d exits, want %d", points, len(ex), points)
		}
	}
	for _, bad := range []int{0, 1, 3, 12} {
		if _, err := FFT(bad, Params{}); err == nil {
			t.Fatalf("n=%d must error", bad)
		}
	}
}

// TestScaleMatchesWorkloadHistory pins the moved Scale generator to its
// historical output shape: the POLICY/SCALE/LEDGER makespans depend on these
// graphs bit for bit.
func TestScaleDeterministicShape(t *testing.T) {
	g := Scale(1000, 25, 12, 42)
	if g.Len() != 1000 {
		t.Fatalf("tasks = %d", g.Len())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	h := Scale(1000, 25, 12, 42)
	if len(g.Links()) != len(h.Links()) {
		t.Fatal("Scale not deterministic")
	}
}

// connected reports whether the graph is one weakly-connected component.
func connected(g *afg.Graph) bool {
	ids := g.TaskIDs()
	if len(ids) <= 1 {
		return len(ids) == 1
	}
	seen := map[afg.TaskID]bool{ids[0]: true}
	stack := []afg.TaskID{ids[0]}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, l := range g.Children(cur) {
			if !seen[l.To] {
				seen[l.To] = true
				stack = append(stack, l.To)
			}
		}
		for _, l := range g.Parents(cur) {
			if !seen[l.From] {
				seen[l.From] = true
				stack = append(stack, l.From)
			}
		}
	}
	return len(seen) == len(ids)
}

// depth is the critical-path hop count (longest chain of links).
func depth(t *testing.T, g *afg.Graph) int {
	t.Helper()
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	d := map[afg.TaskID]int{}
	max := 0
	for _, id := range order {
		for _, l := range g.Parents(id) {
			if d[l.From]+1 > d[id] {
				d[id] = d[l.From] + 1
			}
		}
		if d[id] > max {
			max = d[id]
		}
	}
	return max
}
