package afg

import "testing"

// TestTotalWorkOrderIndependent pins the determinism contract on TotalWork:
// float64 addition is not associative, so summing ComputeCost in map
// iteration order would let the same graph report different totals from run
// to run (observable through the editor's /validate JSON). The costs below
// are chosen so that at least two addition orders disagree in the last bit.
func TestTotalWorkOrderIndependent(t *testing.T) {
	costs := map[TaskID]float64{"a": 0.1, "b": 0.2, "c": 0.3, "d": 0.4}
	ids := []TaskID{"a", "b", "c", "d"}

	build := func(order []TaskID) *Graph {
		g := New("perm")
		for _, id := range order {
			if err := g.AddTask(&Task{ID: id, Function: "noop", ComputeCost: costs[id]}); err != nil {
				t.Fatal(err)
			}
		}
		return g
	}

	// The contract: the sum is taken in ascending TaskID order.
	var want float64
	for _, id := range ids {
		want += costs[id]
	}

	var perms func(order []TaskID, k int)
	perms = func(order []TaskID, k int) {
		if k == len(order) {
			g := build(order)
			for i := 0; i < 50; i++ {
				//vdce:ignore floateq bit-identity across insertion orders and repeated calls is the property under test
				if got := g.TotalWork(); got != want {
					t.Fatalf("TotalWork() = %.17g for insertion order %v, want %.17g", got, order, want)
				}
			}
			return
		}
		for i := k; i < len(order); i++ {
			order[k], order[i] = order[i], order[k]
			perms(order, k+1)
			order[k], order[i] = order[i], order[k]
		}
	}
	perms(append([]TaskID(nil), ids...), 0)
}
