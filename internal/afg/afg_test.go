package afg

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// diamond builds the classic A→{B,C}→D graph with given costs.
func diamond(t *testing.T) *Graph {
	t.Helper()
	g := New("diamond")
	for _, spec := range []struct {
		id   TaskID
		cost float64
	}{{"A", 4}, {"B", 2}, {"C", 3}, {"D", 1}} {
		if err := g.AddTask(&Task{ID: spec.id, Function: "noop", ComputeCost: spec.cost}); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range []Link{{From: "A", To: "B", Bytes: 10}, {From: "A", To: "C", Bytes: 20}, {From: "B", To: "D"}, {From: "C", To: "D"}} {
		if err := g.AddLink(l); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestAddTaskDuplicate(t *testing.T) {
	g := New("g")
	if err := g.AddTask(&Task{ID: "x"}); err != nil {
		t.Fatal(err)
	}
	err := g.AddTask(&Task{ID: "x"})
	if !errors.Is(err, ErrDuplicateTask) {
		t.Fatalf("err = %v", err)
	}
}

func TestAddTaskEmptyID(t *testing.T) {
	g := New("g")
	if err := g.AddTask(&Task{}); err == nil {
		t.Fatal("expected error for empty id")
	}
}

func TestAddTaskNormalisesProcessors(t *testing.T) {
	g := New("g")
	if err := g.AddTask(&Task{ID: "x", Processors: 0}); err != nil {
		t.Fatal(err)
	}
	if g.Task("x").Processors != 1 {
		t.Fatalf("processors = %d, want 1", g.Task("x").Processors)
	}
}

func TestAddLinkValidation(t *testing.T) {
	g := New("g")
	if err := g.AddTask(&Task{ID: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddTask(&Task{ID: "b"}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(Link{From: "a", To: "a"}); !errors.Is(err, ErrSelfLink) {
		t.Fatalf("self link err = %v", err)
	}
	if err := g.AddLink(Link{From: "a", To: "zz"}); !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("unknown err = %v", err)
	}
	if err := g.AddLink(Link{From: "a", To: "b"}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(Link{From: "a", To: "b"}); !errors.Is(err, ErrDuplicateLink) {
		t.Fatalf("dup err = %v", err)
	}
	if err := g.AddLink(Link{From: "b", To: "a"}); !errors.Is(err, ErrCycle) {
		t.Fatalf("cycle err = %v", err)
	}
}

func TestEntriesAndExits(t *testing.T) {
	g := diamond(t)
	if e := g.Entries(); len(e) != 1 || e[0] != "A" {
		t.Fatalf("entries = %v", e)
	}
	if x := g.Exits(); len(x) != 1 || x[0] != "D" {
		t.Fatalf("exits = %v", x)
	}
}

func TestTopoOrder(t *testing.T) {
	g := diamond(t)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[TaskID]int{}
	for i, id := range order {
		pos[id] = i
	}
	for _, l := range g.Links() {
		if pos[l.From] >= pos[l.To] {
			t.Fatalf("order violates %s -> %s: %v", l.From, l.To, order)
		}
	}
}

func TestLevels(t *testing.T) {
	g := diamond(t)
	levels, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	// D=1; B=2+1=3; C=3+1=4; A=4+max(3,4)=8.
	want := map[TaskID]float64{"A": 8, "B": 3, "C": 4, "D": 1}
	for id, w := range want {
		if levels[id] != w { //vdce:ignore floateq hand-computed oracle: integer-valued levels are exact in float64
			t.Fatalf("level[%s] = %v, want %v", id, levels[id], w)
		}
	}
	cp, err := g.CriticalPathLength()
	if err != nil {
		t.Fatal(err)
	}
	if cp != 8 {
		t.Fatalf("critical path = %v, want 8", cp)
	}
}

func TestTotalWork(t *testing.T) {
	g := diamond(t)
	if w := g.TotalWork(); w != 10 {
		t.Fatalf("total work = %v", w)
	}
}

func TestValidateEmpty(t *testing.T) {
	g := New("empty")
	if err := g.Validate(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("err = %v", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := diamond(t)
	g.Task("A").Params = map[string]string{"n": "8"}
	c := g.Clone()
	c.Task("A").Params["n"] = "99"
	c.Task("A").ComputeCost = 1000
	if g.Task("A").Params["n"] != "8" {
		t.Fatal("clone shares Params map")
	}
	if g.Task("A").ComputeCost != 4 {
		t.Fatal("clone shares Task struct")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := diamond(t)
	g.Task("B").Mode = Parallel
	g.Task("B").Processors = 4
	g.Task("B").MachineType = "solaris"
	g.Task("B").Params = map[string]string{"n": "256"}
	data, err := g.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "diamond" || back.Len() != 4 {
		t.Fatalf("round trip lost structure: %s/%d", back.Name, back.Len())
	}
	b := back.Task("B")
	if b.Mode != Parallel || b.Processors != 4 || b.MachineType != "solaris" || b.Params["n"] != "256" {
		t.Fatalf("task B lost properties: %+v", b)
	}
	if len(back.Links()) != 4 {
		t.Fatalf("links = %v", back.Links())
	}
	lvl, err := back.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if lvl["A"] != 8 {
		t.Fatalf("levels after round trip: %v", lvl)
	}
}

func TestDecodeRejectsCycle(t *testing.T) {
	data := []byte(`{"name":"bad","tasks":[{"id":"a","function":"f"},{"id":"b","function":"f"}],
		"links":[{"From":"a","To":"b"},{"From":"b","To":"a"}]}`)
	if _, err := Decode(data); err == nil {
		t.Fatal("expected cycle rejection")
	}
}

func TestDecodeRejectsUnknownMode(t *testing.T) {
	data := []byte(`{"name":"bad","tasks":[{"id":"a","function":"f","mode":"quantum"}]}`)
	if _, err := Decode(data); err == nil {
		t.Fatal("expected mode rejection")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("{")); err == nil {
		t.Fatal("expected JSON error")
	}
}

func TestTrackerDiamond(t *testing.T) {
	g := diamond(t)
	tr := NewTracker(g)
	if r := tr.Ready(); len(r) != 1 || r[0] != "A" {
		t.Fatalf("ready = %v", r)
	}
	newly := tr.Complete("A")
	if len(newly) != 2 || newly[0] != "B" || newly[1] != "C" {
		t.Fatalf("newly = %v", newly)
	}
	if tr.Complete("D") != nil {
		t.Fatal("completing non-ready task should be a no-op")
	}
	tr.Complete("B")
	if tr.IsReady("D") {
		t.Fatal("D ready too early")
	}
	newly = tr.Complete("C")
	if len(newly) != 1 || newly[0] != "D" {
		t.Fatalf("newly = %v", newly)
	}
	tr.Complete("D")
	if !tr.AllDone() || tr.Remaining() != 0 {
		t.Fatal("tracker should be finished")
	}
}

func TestTrackerDoubleComplete(t *testing.T) {
	g := diamond(t)
	tr := NewTracker(g)
	tr.Complete("A")
	if tr.Complete("A") != nil {
		t.Fatal("double complete should return nil")
	}
	if tr.Remaining() != 3 {
		t.Fatalf("remaining = %d", tr.Remaining())
	}
}

// randomDAG builds a layered random DAG; used by property tests.
func randomDAG(rng *rand.Rand, layers, width int) *Graph {
	g := New("rand")
	var prev []TaskID
	id := 0
	for l := 0; l < layers; l++ {
		n := 1 + rng.Intn(width)
		var cur []TaskID
		for i := 0; i < n; i++ {
			tid := TaskID(string(rune('a'+l)) + "-" + string(rune('0'+i)))
			_ = id
			g.AddTask(&Task{ID: tid, Function: "noop", ComputeCost: 1 + rng.Float64()*9})
			cur = append(cur, tid)
		}
		for _, c := range cur {
			for _, p := range prev {
				if rng.Float64() < 0.5 {
					g.AddLink(Link{From: p, To: c, Bytes: int64(rng.Intn(1000))})
				}
			}
		}
		prev = cur
	}
	return g
}

// Property: topological order respects every link, and levels decrease along
// links by at least the child cost relationship level(p) >= cost(p)+level(c).
func TestPropertyTopoAndLevels(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 2+rng.Intn(5), 4)
		order, err := g.TopoOrder()
		if err != nil {
			return false
		}
		pos := map[TaskID]int{}
		for i, tid := range order {
			pos[tid] = i
		}
		levels, err := g.Levels()
		if err != nil {
			return false
		}
		for _, l := range g.Links() {
			if pos[l.From] >= pos[l.To] {
				return false
			}
			p := g.Task(l.From)
			if levels[l.From] < p.ComputeCost+levels[l.To]-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: completing tasks in any ready-respecting order finishes the whole
// graph exactly once per task.
func TestPropertyTrackerCompletes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 2+rng.Intn(4), 3)
		tr := NewTracker(g)
		steps := 0
		for !tr.AllDone() {
			ready := tr.Ready()
			if len(ready) == 0 {
				return false // deadlock would be a bug
			}
			pick := ready[rng.Intn(len(ready))]
			tr.Complete(pick)
			steps++
			if steps > g.Len() {
				return false
			}
		}
		return steps == g.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: JSON round trip preserves task count, link count, and levels.
func TestPropertyJSONRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 2+rng.Intn(4), 3)
		data, err := g.Encode()
		if err != nil {
			return false
		}
		back, err := Decode(data)
		if err != nil {
			return false
		}
		if back.Len() != g.Len() || len(back.Links()) != len(g.Links()) {
			return false
		}
		l1, _ := g.Levels()
		l2, _ := back.Levels()
		for id, v := range l1 {
			if d := l2[id] - v; d > 1e-9 || d < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLevels200(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	g := randomDAG(rng, 20, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Levels(); err != nil {
			b.Fatal(err)
		}
	}
}
