// Package afg implements the Application Flow Graph (AFG), the dataflow
// program representation produced by the VDCE Application Editor and
// consumed by the Application Scheduler and Runtime System.
//
// An AFG is a directed acyclic graph G = (T, L): nodes are tasks selected
// from the VDCE task libraries and a directed link (i, j) means task i must
// complete before task j starts (paper §2.1). Each task carries the
// properties the editor's pop-up panel exposes — computational mode
// (sequential/parallel), machine-type preference, and processor count — plus
// the cost metadata the scheduler reads from the task-performance database.
package afg

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// TaskID identifies a task within one application flow graph.
type TaskID string

// Mode is the computational mode of a task (editor task-properties panel).
type Mode int

// Computational modes.
const (
	Sequential Mode = iota
	Parallel
)

func (m Mode) String() string {
	switch m {
	case Sequential:
		return "sequential"
	case Parallel:
		return "parallel"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Task is one node of an application flow graph.
type Task struct {
	ID       TaskID // unique within the graph
	Function string // task-library function, e.g. "matrix.lu"

	// Editor-specified preferences (paper Fig 3 right panel).
	Mode        Mode   // sequential or parallel execution
	Processors  int    // processor count for parallel mode (>=1)
	MachineType string // preferred architecture type; "" = any

	// Scheduler-visible cost metadata (task-performance database).
	ComputeCost float64 // execution time on the base processor, unit input
	MemReq      int64   // bytes of memory required
	OutputBytes int64   // bytes produced for each successor

	// Params are opaque task arguments (e.g. matrix size) passed to the
	// task-library function at execution time.
	Params map[string]string
}

// Clone returns a deep copy of t.
func (t *Task) Clone() *Task {
	c := *t
	if t.Params != nil {
		c.Params = make(map[string]string, len(t.Params))
		for k, v := range t.Params {
			c.Params[k] = v
		}
	}
	return &c
}

// Link is a directed precedence/communication edge between two tasks.
//
// Port is the input's logical port index on the destination task (the
// paper's editor marks "logical ports" on each task icon): a task's inputs
// are presented to its function in ascending Port order, which makes input
// order explicit and stable across serialisation. Port 0 on a task that
// already has parents means "auto-assign the next free port".
type Link struct {
	From, To TaskID
	Bytes    int64 // data volume transferred From → To
	Port     int   // input port index on To
}

// Graph is an application flow graph.
type Graph struct {
	Name  string
	tasks map[TaskID]*Task
	succ  map[TaskID][]Link // outgoing links, keyed by From
	pred  map[TaskID][]Link // incoming links, keyed by To

	// Dense-view cache (see Index): structural mutations bump gen, so a
	// cached Index is valid exactly while idxGen == gen. The mutex makes
	// Index() safe from the concurrent readers of a frozen graph (batch
	// scheduling fans selectors out over one graph); mutation itself is
	// single-writer, as before.
	mu     sync.Mutex
	gen    uint64
	idx    *Index
	idxGen uint64
}

// Common graph errors.
var (
	ErrDuplicateTask = errors.New("afg: duplicate task id")
	ErrUnknownTask   = errors.New("afg: unknown task id")
	ErrSelfLink      = errors.New("afg: link from a task to itself")
	ErrDuplicateLink = errors.New("afg: duplicate link")
	ErrCycle         = errors.New("afg: graph contains a cycle")
	ErrEmpty         = errors.New("afg: graph has no tasks")
	ErrPortConflict  = errors.New("afg: input port already connected")
)

// New returns an empty application flow graph.
func New(name string) *Graph {
	return NewSized(name, 0)
}

// NewSized is New with a task-count capacity hint for bulk construction
// (generators, graph merges): the id-keyed maps are sized up front, so
// building a large graph skips the incremental rehash growth.
func NewSized(name string, tasks int) *Graph {
	return &Graph{
		Name:  name,
		tasks: make(map[TaskID]*Task, tasks),
		succ:  make(map[TaskID][]Link, tasks),
		pred:  make(map[TaskID][]Link, tasks),
	}
}

// AddTask inserts a task node. The task's ID must be unique.
func (g *Graph) AddTask(t *Task) error {
	if t.ID == "" {
		return fmt.Errorf("afg: empty task id")
	}
	if _, ok := g.tasks[t.ID]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateTask, t.ID)
	}
	if t.Processors < 1 {
		t.Processors = 1
	}
	g.tasks[t.ID] = t
	g.mu.Lock()
	g.gen++
	g.mu.Unlock()
	return nil
}

// AddLink inserts a directed link. Both endpoints must already exist and
// the link must not introduce a cycle. A zero Port on a task that already
// has parents is auto-assigned the next free port; use AddLinkExact to
// force port 0.
func (g *Graph) AddLink(l Link) error {
	return g.addLink(l, true)
}

// AddLinkExact inserts a link honouring l.Port exactly (deserialisation and
// editors that manage ports themselves).
func (g *Graph) AddLinkExact(l Link) error {
	return g.addLink(l, false)
}

func (g *Graph) addLink(l Link, autoPort bool) error {
	if l.From == l.To {
		return fmt.Errorf("%w: %q", ErrSelfLink, l.From)
	}
	if _, ok := g.tasks[l.From]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTask, l.From)
	}
	if _, ok := g.tasks[l.To]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTask, l.To)
	}
	for _, e := range g.succ[l.From] {
		if e.To == l.To {
			return fmt.Errorf("%w: %s -> %s", ErrDuplicateLink, l.From, l.To)
		}
	}
	if g.reachable(l.To, l.From) {
		return fmt.Errorf("%w: adding %s -> %s", ErrCycle, l.From, l.To)
	}
	if autoPort && l.Port == 0 && len(g.pred[l.To]) > 0 {
		// Auto-assign the next free input port.
		next := 0
		for _, e := range g.pred[l.To] {
			if e.Port >= next {
				next = e.Port + 1
			}
		}
		l.Port = next
	}
	for _, e := range g.pred[l.To] {
		if e.Port == l.Port {
			return fmt.Errorf("%w: port %d on %s already connected (from %s)",
				ErrPortConflict, l.Port, l.To, e.From)
		}
	}
	g.succ[l.From] = append(g.succ[l.From], l)
	g.pred[l.To] = append(g.pred[l.To], l)
	// Keep parents in port order: a task's inputs arrive in this order.
	sort.Slice(g.pred[l.To], func(i, j int) bool {
		return g.pred[l.To][i].Port < g.pred[l.To][j].Port
	})
	g.mu.Lock()
	g.gen++
	g.mu.Unlock()
	return nil
}

// reachable reports whether dst is reachable from src by directed links.
func (g *Graph) reachable(src, dst TaskID) bool {
	if src == dst {
		return true
	}
	seen := map[TaskID]bool{src: true}
	stack := []TaskID{src}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.succ[cur] {
			if e.To == dst {
				return true
			}
			if !seen[e.To] {
				seen[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	return false
}

// Task returns the task with the given id, or nil if absent.
//
//vdce:ignore allocflow one map probe at the id-keyed boundary; per-iteration code uses Index().Task(i) and hot callers cross this boundary once per task
func (g *Graph) Task(id TaskID) *Task { return g.tasks[id] }

// Len returns the number of tasks.
func (g *Graph) Len() int { return len(g.tasks) }

// TaskIDs returns all task ids in deterministic (sorted) order.
//
//vdce:ignore allocflow per-graph enumeration, O(V log V) once per walk; per-iteration code ranges the cached Index IDs table instead
func (g *Graph) TaskIDs() []TaskID {
	ids := make([]TaskID, 0, len(g.tasks))
	for id := range g.tasks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Links returns every link in deterministic order.
func (g *Graph) Links() []Link {
	var out []Link
	for _, id := range g.TaskIDs() {
		out = append(out, g.succ[id]...)
	}
	return out
}

// Parents returns the incoming links of id.
//
//vdce:ignore allocflow one map probe at the id-keyed boundary; per-iteration code walks the Index CSR arcs
func (g *Graph) Parents(id TaskID) []Link { return g.pred[id] }

// Children returns the outgoing links of id.
//
//vdce:ignore allocflow one map probe at the id-keyed boundary; per-iteration code walks the Index CSR arcs
func (g *Graph) Children(id TaskID) []Link { return g.succ[id] }

// Entries returns the tasks with no parents, in sorted order. The paper
// calls these "entry tasks"; the Site Scheduler treats them specially.
func (g *Graph) Entries() []TaskID {
	var out []TaskID
	for _, id := range g.TaskIDs() {
		if len(g.pred[id]) == 0 {
			out = append(out, id)
		}
	}
	return out
}

// Exits returns the tasks with no children ("exit nodes", §2.2).
func (g *Graph) Exits() []TaskID {
	var out []TaskID
	for _, id := range g.TaskIDs() {
		if len(g.succ[id]) == 0 {
			out = append(out, id)
		}
	}
	return out
}

// Validate checks structural invariants: non-empty and acyclic. AddLink
// already prevents cycles, but Validate also covers graphs built by
// deserialisation.
func (g *Graph) Validate() error {
	if len(g.tasks) == 0 {
		return ErrEmpty
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// TopoOrder returns a deterministic topological ordering (ascending-id
// frontier) or ErrCycle. The order itself comes from the cached dense
// Index; this wrapper materialises it as TaskIDs for map-keyed callers.
func (g *Graph) TopoOrder() ([]TaskID, error) {
	ix, err := g.Index()
	if err != nil {
		return nil, err
	}
	order := make([]TaskID, len(ix.topo))
	for k, i := range ix.topo {
		order[k] = ix.ids[i]
	}
	return order, nil
}

// Levels computes the list-scheduling priority of every task (paper §2.2):
// the level of a node is the largest sum of computation costs along any path
// from the node to an exit node, inclusive of the node's own cost. Higher
// level ⇒ higher scheduling priority.
//
//vdce:ignore allocflow materialises the id-keyed view for map-keyed callers, once per walk; dense consumers read ix.Levels() directly
func (g *Graph) Levels() (map[TaskID]float64, error) {
	ix, err := g.Index()
	if err != nil {
		return nil, err
	}
	dense := ix.Levels()
	levels := make(map[TaskID]float64, len(dense))
	for i, v := range dense {
		levels[ix.ids[i]] = v
	}
	return levels, nil
}

// CriticalPathLength returns the largest level value — the lower bound on
// schedule length ignoring communication.
func (g *Graph) CriticalPathLength() (float64, error) {
	levels, err := g.Levels()
	if err != nil {
		return 0, err
	}
	var max float64
	//vdce:ignore detflow max over map values is order-independent: float comparison, unlike float addition, commutes
	for _, l := range levels {
		if l > max {
			max = l
		}
	}
	return max, nil
}

// TotalWork returns the sum of all task computation costs. Summation runs
// in sorted task-id order: float addition is not bitwise-commutative, so a
// map-order walk would return different low bits run to run — observable
// wherever the value is serialized (the editor's /validate response).
func (g *Graph) TotalWork() float64 {
	var sum float64
	for _, id := range g.TaskIDs() {
		sum += g.tasks[id].ComputeCost
	}
	return sum
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(g.Name)
	for id, t := range g.tasks {
		c.tasks[id] = t.Clone()
	}
	for id, links := range g.succ {
		c.succ[id] = append([]Link(nil), links...)
	}
	for id, links := range g.pred {
		c.pred[id] = append([]Link(nil), links...)
	}
	return c
}
