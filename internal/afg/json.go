package afg

import (
	"encoding/json"
	"fmt"
)

// wireGraph is the JSON wire format for an application flow graph. It is the
// contract between the Application Editor (which serialises graphs for
// storage or submission, §2.1 "the user may store the application flow graph
// for future use") and the Site Manager.
type wireGraph struct {
	Name  string     `json:"name"`
	Tasks []wireTask `json:"tasks"`
	Links []Link     `json:"links"`
}

type wireTask struct {
	ID          TaskID            `json:"id"`
	Function    string            `json:"function"`
	Mode        string            `json:"mode,omitempty"`
	Processors  int               `json:"processors,omitempty"`
	MachineType string            `json:"machineType,omitempty"`
	ComputeCost float64           `json:"computeCost,omitempty"`
	MemReq      int64             `json:"memReq,omitempty"`
	OutputBytes int64             `json:"outputBytes,omitempty"`
	Params      map[string]string `json:"params,omitempty"`
}

// MarshalJSON encodes the graph deterministically (tasks and links sorted).
func (g *Graph) MarshalJSON() ([]byte, error) {
	w := wireGraph{Name: g.Name, Links: g.Links()}
	for _, id := range g.TaskIDs() {
		t := g.tasks[id]
		w.Tasks = append(w.Tasks, wireTask{
			ID:          t.ID,
			Function:    t.Function,
			Mode:        t.Mode.String(),
			Processors:  t.Processors,
			MachineType: t.MachineType,
			ComputeCost: t.ComputeCost,
			MemReq:      t.MemReq,
			OutputBytes: t.OutputBytes,
			Params:      t.Params,
		})
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes a graph and validates it (acyclicity included).
func (g *Graph) UnmarshalJSON(data []byte) error {
	var w wireGraph
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("afg: decode: %w", err)
	}
	fresh := New(w.Name)
	for _, wt := range w.Tasks {
		mode := Sequential
		switch wt.Mode {
		case "", "sequential":
		case "parallel":
			mode = Parallel
		default:
			return fmt.Errorf("afg: task %q: unknown mode %q", wt.ID, wt.Mode)
		}
		t := &Task{
			ID:          wt.ID,
			Function:    wt.Function,
			Mode:        mode,
			Processors:  wt.Processors,
			MachineType: wt.MachineType,
			ComputeCost: wt.ComputeCost,
			MemReq:      wt.MemReq,
			OutputBytes: wt.OutputBytes,
			Params:      wt.Params,
		}
		if err := fresh.AddTask(t); err != nil {
			return err
		}
	}
	for _, l := range w.Links {
		if err := fresh.AddLinkExact(l); err != nil {
			return err
		}
	}
	if err := fresh.Validate(); err != nil {
		return err
	}
	// Move the decoded state field-by-field: copying the whole struct
	// would copy the dense-view mutex, and g may have a cached Index to
	// invalidate.
	g.mu.Lock()
	g.Name = fresh.Name
	g.tasks = fresh.tasks
	g.succ = fresh.succ
	g.pred = fresh.pred
	g.gen++
	g.idx = nil
	g.mu.Unlock()
	return nil
}

// Encode renders the graph as indented JSON.
func (g *Graph) Encode() ([]byte, error) {
	return json.MarshalIndent(g, "", "  ")
}

// Decode parses a JSON application flow graph.
func Decode(data []byte) (*Graph, error) {
	g := New("")
	if err := g.UnmarshalJSON(data); err != nil {
		return nil, err
	}
	return g, nil
}
