package afg

import (
	"fmt"
	"testing"
)

// FuzzGraphIndex drives a Graph through an arbitrary AddTask/AddLink
// sequence decoded from the fuzz input — with Index() snapshots taken
// mid-stream, so generation invalidation is exercised too — and then checks
// that the dense view agrees with the map-keyed graph on every axis:
// id assignment, CSR adjacency (including the resolved transfer bytes),
// topological validity, and level values. Run the smoke in CI with:
//
//	go test -run=NONE -fuzz=FuzzGraphIndex -fuzztime=10s ./internal/afg
func FuzzGraphIndex(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 2, 1, 2})
	f.Add([]byte{0, 1, 0, 2, 0, 3, 2, 1, 2, 3, 2, 3, 2, 1, 3})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, ops []byte) {
		g := New("fuzz")
		id := func(b byte) TaskID { return TaskID(fmt.Sprintf("t%02d", b%24)) }
		for i := 0; i+1 < len(ops); i += 2 {
			switch ops[i] % 4 {
			case 0: // add a task; duplicates are rejected and ignored
				b := ops[i+1]
				_ = g.AddTask(&Task{
					ID:          id(b),
					Function:    "f",
					ComputeCost: float64(b%7) + 0.5,
					OutputBytes: int64(b % 5 * 100),
				})
			case 1, 2: // add a link; errors (cycle, dup, unknown) are ignored
				if i+2 >= len(ops) {
					break
				}
				l := Link{From: id(ops[i+1]), To: id(ops[i+2]), Bytes: int64(ops[i+1]%3) * 50}
				_ = g.AddLink(l)
				i++
			case 3: // snapshot the index mid-stream: later mutations must invalidate it
				if g.Len() > 0 {
					if _, err := g.Index(); err != nil {
						t.Fatalf("mid-stream Index: %v", err)
					}
				}
			}
		}
		if g.Len() == 0 {
			return
		}
		ix, err := g.Index()
		if err != nil {
			t.Fatalf("Index: %v", err)
		}

		// Identity: dense ids are exactly the sorted TaskIDs, and Of inverts.
		ids := g.TaskIDs()
		if ix.Len() != len(ids) {
			t.Fatalf("Len %d != %d tasks", ix.Len(), len(ids))
		}
		for i, want := range ids {
			if got := ix.ID(i); got != want {
				t.Fatalf("ID(%d) = %q, want %q", i, got, want)
			}
			if ix.Of(want) != i {
				t.Fatalf("Of(%q) = %d, want %d", want, ix.Of(want), i)
			}
			if ix.Task(i) != g.Task(want) {
				t.Fatalf("Task(%d) is not the graph's task %q", i, want)
			}
		}
		if ix.Of("nope") != -1 {
			t.Fatal("Of(unknown) != -1")
		}

		// Adjacency: CSR arcs mirror the map-keyed links, with the transfer
		// volume resolved by the link-bytes-else-parent-OutputBytes rule.
		resolve := func(l Link) int64 {
			if l.Bytes > 0 {
				return l.Bytes
			}
			return g.Task(l.From).OutputBytes
		}
		for i, tid := range ids {
			children := g.Children(tid)
			arcs := ix.Children(i)
			if len(arcs) != len(children) {
				t.Fatalf("task %q: %d dense children, %d map children", tid, len(arcs), len(children))
			}
			for k, l := range children {
				if ix.ID(int(arcs[k].Peer)) != l.To || arcs[k].Bytes != resolve(l) {
					t.Fatalf("task %q child %d: arc %+v vs link %+v", tid, k, arcs[k], l)
				}
			}
			parents := g.Parents(tid)
			arcs = ix.Parents(i)
			if len(arcs) != len(parents) || ix.NumParents(i) != len(parents) {
				t.Fatalf("task %q: %d dense parents, %d map parents", tid, len(arcs), len(parents))
			}
			for k, l := range parents {
				if ix.ID(int(arcs[k].Peer)) != l.From || arcs[k].Bytes != resolve(l) {
					t.Fatalf("task %q parent %d: arc %+v vs link %+v", tid, k, arcs[k], l)
				}
			}
		}

		// Topological validity: a permutation with every parent first.
		topo := ix.Topo()
		if len(topo) != ix.Len() {
			t.Fatalf("topo covers %d of %d", len(topo), ix.Len())
		}
		pos := make([]int, ix.Len())
		seen := make([]bool, ix.Len())
		for k, i := range topo {
			if seen[i] {
				t.Fatalf("topo repeats %d", i)
			}
			seen[i] = true
			pos[i] = k
		}
		for i := range ids {
			for _, a := range ix.Parents(i) {
				if pos[a.Peer] >= pos[i] {
					t.Fatalf("topo places parent %d after child %d", a.Peer, i)
				}
			}
		}

		// Levels: recompute independently from the map view.
		want := make(map[TaskID]float64, len(ids))
		var level func(TaskID) float64
		level = func(tid TaskID) float64 {
			if v, ok := want[tid]; ok {
				return v
			}
			var best float64
			for _, l := range g.Children(tid) {
				if v := level(l.To); v > best {
					best = v
				}
			}
			v := best + g.Task(tid).ComputeCost
			want[tid] = v
			return v
		}
		dense := ix.Levels()
		for i, tid := range ids {
			if dense[i] != level(tid) { //vdce:ignore floateq dense-vs-recomputed equivalence: bit identity is the property under fuzz
				t.Fatalf("level(%q) = %v dense, %v recomputed", tid, dense[i], level(tid))
			}
		}
	})
}
