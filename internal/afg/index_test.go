package afg

import (
	"fmt"
	"testing"
)

func diamondGraph(t *testing.T) *Graph {
	t.Helper()
	g := New("ix")
	for _, id := range []TaskID{"a", "b", "c", "d"} {
		if err := g.AddTask(&Task{ID: id, Function: "f", ComputeCost: 1, OutputBytes: 7}); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range []Link{
		{From: "a", To: "b", Bytes: 10},
		{From: "a", To: "c"}, // falls back to a's OutputBytes
		{From: "b", To: "d"},
		{From: "c", To: "d"},
	} {
		if err := g.AddLink(l); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestIndexStructureMatchesGraph(t *testing.T) {
	g := diamondGraph(t)
	ix, err := g.Index()
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != g.Len() {
		t.Fatalf("Len = %d, want %d", ix.Len(), g.Len())
	}
	// Dense order is ascending id order.
	ids := g.TaskIDs()
	for i, id := range ids {
		if ix.ID(i) != id {
			t.Fatalf("ID(%d) = %s, want %s", i, ix.ID(i), id)
		}
		if ix.Of(id) != i {
			t.Fatalf("Of(%s) = %d, want %d", id, ix.Of(id), i)
		}
		if ix.Task(i) != g.Task(id) {
			t.Fatalf("Task(%d) is not the graph's task %s", i, id)
		}
	}
	if ix.Of("nope") != -1 {
		t.Fatalf("Of(unknown) = %d, want -1", ix.Of("nope"))
	}
	// CSR adjacency mirrors Parents/Children, bytes resolved per the
	// transfer rule (explicit link bytes, else parent OutputBytes).
	for i, id := range ids {
		links := g.Children(id)
		arcs := ix.Children(i)
		if len(arcs) != len(links) {
			t.Fatalf("Children(%s): %d arcs, want %d", id, len(arcs), len(links))
		}
		for k, l := range links {
			want := l.Bytes
			if want == 0 {
				want = g.Task(l.From).OutputBytes
			}
			if ix.ID(int(arcs[k].Peer)) != l.To || arcs[k].Bytes != want {
				t.Fatalf("Children(%s)[%d] = {%s,%d}, want {%s,%d}",
					id, k, ix.ID(int(arcs[k].Peer)), arcs[k].Bytes, l.To, want)
			}
		}
		plinks := g.Parents(id)
		parcs := ix.Parents(i)
		if len(parcs) != len(plinks) || ix.NumParents(i) != len(plinks) {
			t.Fatalf("Parents(%s): %d arcs, want %d", id, len(parcs), len(plinks))
		}
		for k, l := range plinks {
			if ix.ID(int(parcs[k].Peer)) != l.From {
				t.Fatalf("Parents(%s)[%d] = %s, want %s", id, k, ix.ID(int(parcs[k].Peer)), l.From)
			}
		}
	}
}

func TestIndexTopoAndLevelsMatchMapAPIs(t *testing.T) {
	g := New("wide")
	for i := 0; i < 60; i++ {
		id := TaskID(fmt.Sprintf("t%02d", i))
		if err := g.AddTask(&Task{ID: id, Function: "f", ComputeCost: 1 + float64(i%5)}); err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			from := TaskID(fmt.Sprintf("t%02d", (i-1)/2))
			if err := g.AddLink(Link{From: from, To: id}); err != nil {
				t.Fatal(err)
			}
		}
	}
	ix, err := g.Index()
	if err != nil {
		t.Fatal(err)
	}
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != len(ix.Topo()) {
		t.Fatalf("topo lengths differ: %d vs %d", len(order), len(ix.Topo()))
	}
	for k, i := range ix.Topo() {
		if ix.ID(int(i)) != order[k] {
			t.Fatalf("topo[%d] = %s, want %s", k, ix.ID(int(i)), order[k])
		}
	}
	levels, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	dense := ix.Levels()
	for i, v := range dense {
		if levels[ix.ID(i)] != v { //vdce:ignore floateq dense-vs-map equivalence: both sides compute the same expression, bit identity intended
			t.Fatalf("levels[%s] = %v dense, %v map", ix.ID(i), v, levels[ix.ID(i)])
		}
	}
}

func TestIndexCacheInvalidatedByMutation(t *testing.T) {
	g := diamondGraph(t)
	ix1, err := g.Index()
	if err != nil {
		t.Fatal(err)
	}
	ix2, _ := g.Index()
	if ix1 != ix2 {
		t.Fatal("Index not cached across calls on an unmodified graph")
	}
	if err := g.AddTask(&Task{ID: "e", Function: "f", ComputeCost: 1}); err != nil {
		t.Fatal(err)
	}
	ix3, err := g.Index()
	if err != nil {
		t.Fatal(err)
	}
	if ix3 == ix1 {
		t.Fatal("Index cache not invalidated by AddTask")
	}
	if ix3.Len() != 5 || ix3.Of("e") == -1 {
		t.Fatalf("rebuilt index missing new task: len=%d of(e)=%d", ix3.Len(), ix3.Of("e"))
	}
	if err := g.AddLink(Link{From: "d", To: "e"}); err != nil {
		t.Fatal(err)
	}
	ix4, err := g.Index()
	if err != nil {
		t.Fatal(err)
	}
	if ix4 == ix3 {
		t.Fatal("Index cache not invalidated by AddLink")
	}
	if got := len(ix4.Parents(ix4.Of("e"))); got != 1 {
		t.Fatalf("rebuilt index missing new link: e has %d parents", got)
	}
}

func TestIndexConcurrentAccess(t *testing.T) {
	g := diamondGraph(t)
	done := make(chan *Index, 8)
	for w := 0; w < 8; w++ {
		go func() {
			ix, err := g.Index()
			if err != nil {
				panic(err)
			}
			_ = ix.Levels()
			done <- ix
		}()
	}
	first := <-done
	for w := 1; w < 8; w++ {
		if ix := <-done; ix != first {
			t.Fatal("concurrent Index() calls built distinct indices")
		}
	}
}
