package afg

import (
	"sort"

	"repro/internal/minheap"
)

// Index is the dense, slice-addressed view of a Graph the scheduling hot
// path runs on: every task gets a stable integer index (ascending TaskID
// order, so index order and id order agree), adjacency is CSR-style —
// one contiguous arc array per direction plus offset tables — and the
// deterministic topological order is computed once and cached with the
// structure.
//
// Invariants:
//
//   - Indices are assigned by sorted TaskID, so sorting indices ascending
//     is exactly the deterministic id tie-break the map-keyed code used.
//   - Arc.Bytes is resolved at build time (the link's explicit size, or the
//     parent task's OutputBytes — the transferBytes rule); task cost
//     metadata must not change between Index() and the end of scheduling.
//   - The Index is immutable once built. Graph mutations (AddTask/AddLink)
//     invalidate the cached Index; holding one across a mutation yields a
//     stale structural snapshot.
type Index struct {
	ids   []TaskID
	of    map[TaskID]int32
	tasks []*Task
	topo  []int32 // deterministic topological order (Kahn, min-id frontier)

	childStart  []int32 // CSR offsets into childArc, len V+1
	childArc    []Arc
	parentStart []int32 // CSR offsets into parentArc, len V+1
	parentArc   []Arc
}

// Arc is one adjacency entry of the dense view: the dense index of the
// neighbour task and the resolved transfer volume of the link.
type Arc struct {
	Peer  int32 // dense index of the child (childArc) or parent (parentArc)
	Bytes int64 // resolved transfer volume (link bytes or parent OutputBytes)
}

// Index returns the graph's cached dense view, rebuilding it after any
// structural mutation. It fails only on a cyclic graph (possible via
// deserialisation; AddLink refuses cycles).
func (g *Graph) Index() (*Index, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.idx != nil && g.idxGen == g.gen {
		return g.idx, nil
	}
	//vdce:ignore allocflow the index build is certified amortized: cached per graph generation, O(V+E) once, rebuilt only after a structural mutation
	ix, err := buildIndex(g)
	if err != nil {
		return nil, err
	}
	g.idx, g.idxGen = ix, g.gen
	return ix, nil
}

func buildIndex(g *Graph) (*Index, error) {
	n := len(g.tasks)
	ix := &Index{
		ids:   make([]TaskID, 0, n),
		of:    make(map[TaskID]int32, n),
		tasks: make([]*Task, n),
	}
	for id := range g.tasks {
		ix.ids = append(ix.ids, id)
	}
	sort.Slice(ix.ids, func(i, j int) bool { return ix.ids[i] < ix.ids[j] })
	for i, id := range ix.ids {
		ix.of[id] = int32(i)
		ix.tasks[i] = g.tasks[id]
	}

	resolve := func(l Link) int64 {
		if l.Bytes > 0 {
			return l.Bytes
		}
		return g.tasks[l.From].OutputBytes
	}
	ix.childStart = make([]int32, n+1)
	ix.parentStart = make([]int32, n+1)
	for i, id := range ix.ids {
		ix.childStart[i+1] = ix.childStart[i] + int32(len(g.succ[id]))
		ix.parentStart[i+1] = ix.parentStart[i] + int32(len(g.pred[id]))
	}
	ix.childArc = make([]Arc, ix.childStart[n])
	ix.parentArc = make([]Arc, ix.parentStart[n])
	for i, id := range ix.ids {
		for k, l := range g.succ[id] {
			ix.childArc[int(ix.childStart[i])+k] = Arc{Peer: ix.of[l.To], Bytes: resolve(l)}
		}
		// pred is kept in port order — the arc order mirrors Parents(id).
		for k, l := range g.pred[id] {
			ix.parentArc[int(ix.parentStart[i])+k] = Arc{Peer: ix.of[l.From], Bytes: resolve(l)}
		}
	}

	// Deterministic Kahn: the frontier is a min-heap on dense index, which
	// equals min TaskID — the same order TopoOrder produces.
	indeg := make([]int32, n)
	for i := range indeg {
		indeg[i] = ix.parentStart[i+1] - ix.parentStart[i]
	}
	var frontier minheap.Heap[minIdx]
	for i := n - 1; i >= 0; i-- {
		if indeg[i] == 0 {
			frontier = append(frontier, minIdx(i))
		}
	}
	frontier.Init()
	ix.topo = make([]int32, 0, n)
	for len(frontier) > 0 {
		i := int32(frontier.Pop())
		ix.topo = append(ix.topo, i)
		for _, a := range ix.Children(int(i)) {
			indeg[a.Peer]--
			if indeg[a.Peer] == 0 {
				frontier.Push(minIdx(a.Peer))
			}
		}
	}
	if len(ix.topo) != n {
		return nil, ErrCycle
	}
	return ix, nil
}

// Len returns the task count.
func (ix *Index) Len() int { return len(ix.ids) }

// ID returns the TaskID at dense index i.
func (ix *Index) ID(i int) TaskID { return ix.ids[i] }

// IDs returns the dense index → TaskID table (ascending id order). The
// caller must not mutate it.
func (ix *Index) IDs() []TaskID { return ix.ids }

// Of returns the dense index of id, or -1 when the task is unknown.
func (ix *Index) Of(id TaskID) int {
	//vdce:ignore allocflow the one id-to-dense probe at the boundary: hot walks resolve ids once up front and then stay integer-indexed
	if i, ok := ix.of[id]; ok {
		return int(i)
	}
	return -1
}

// Task returns the task at dense index i.
func (ix *Index) Task(i int) *Task { return ix.tasks[i] }

// Topo returns the cached deterministic topological order as dense
// indices. The caller must not mutate it.
func (ix *Index) Topo() []int32 { return ix.topo }

// Children returns the outgoing arcs of dense index i, in link-insertion
// order (the order Graph.Children reports).
func (ix *Index) Children(i int) []Arc {
	return ix.childArc[ix.childStart[i]:ix.childStart[i+1]]
}

// Parents returns the incoming arcs of dense index i, in input-port order
// (the order Graph.Parents reports).
func (ix *Index) Parents(i int) []Arc {
	return ix.parentArc[ix.parentStart[i]:ix.parentStart[i+1]]
}

// NumParents returns the in-degree of dense index i.
func (ix *Index) NumParents(i int) int {
	return int(ix.parentStart[i+1] - ix.parentStart[i])
}

// Levels computes the list-scheduling priority of every task (the same
// quantity as Graph.Levels) as a dense slice: levels[i] is the largest sum
// of computation costs on any path from task i to an exit, inclusive.
// Recomputed per call — it reads the current ComputeCost values.
func (ix *Index) Levels() []float64 {
	levels := make([]float64, len(ix.ids))
	for k := len(ix.topo) - 1; k >= 0; k-- {
		i := ix.topo[k]
		var best float64
		for _, a := range ix.Children(int(i)) {
			if l := levels[a.Peer]; l > best {
				best = l
			}
		}
		levels[i] = best + ix.tasks[i].ComputeCost
	}
	return levels
}

// minIdx is a dense index ordered ascending for the frontier heap.
type minIdx int32

// LessThan implements minheap.Ordered.
func (a minIdx) LessThan(b minIdx) bool { return a < b }
