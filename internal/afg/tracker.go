package afg

//vdce:ignore-file allocflow the Tracker is the id-keyed ready-set shared with the Runtime System (paper Fig 4 steps 6-7): probes are O(1) per completion and the per-iteration schedulers drive the dense Index walk instead

import "sort"

// Tracker maintains the "ready tasks" set of the Site Scheduler Algorithm
// (paper Fig 4, steps 6–7): a task is ready when it has no parents or all of
// its parents have been scheduled/completed. The same structure drives the
// Runtime System's execution ordering.
type Tracker struct {
	g       *Graph
	pending map[TaskID]int // remaining unfinished parents
	ready   map[TaskID]bool
	done    map[TaskID]bool
}

// NewTracker builds a tracker with all entry tasks initially ready.
func NewTracker(g *Graph) *Tracker {
	t := &Tracker{
		g:       g,
		pending: make(map[TaskID]int, g.Len()),
		ready:   make(map[TaskID]bool),
		done:    make(map[TaskID]bool),
	}
	for _, id := range g.TaskIDs() {
		n := len(g.Parents(id))
		t.pending[id] = n
		if n == 0 {
			t.ready[id] = true
		}
	}
	return t
}

// Ready returns the current ready set in sorted order.
func (t *Tracker) Ready() []TaskID {
	out := make([]TaskID, 0, len(t.ready))
	for id := range t.ready {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IsReady reports whether id is currently ready.
func (t *Tracker) IsReady(id TaskID) bool { return t.ready[id] }

// IsDone reports whether id has completed.
func (t *Tracker) IsDone(id TaskID) bool { return t.done[id] }

// Complete marks id finished and returns the tasks that became ready as a
// result. Completing a task twice or a non-ready task returns nil.
func (t *Tracker) Complete(id TaskID) []TaskID {
	if t.done[id] || !t.ready[id] {
		return nil
	}
	delete(t.ready, id)
	t.done[id] = true
	var newly []TaskID
	for _, e := range t.g.Children(id) {
		t.pending[e.To]--
		if t.pending[e.To] == 0 {
			t.ready[e.To] = true
			newly = append(newly, e.To)
		}
	}
	sort.Slice(newly, func(i, j int) bool { return newly[i] < newly[j] })
	return newly
}

// Remaining returns the count of tasks not yet completed.
func (t *Tracker) Remaining() int { return t.g.Len() - len(t.done) }

// AllDone reports whether every task has completed.
func (t *Tracker) AllDone() bool { return len(t.done) == t.g.Len() }
