package afg

import (
	"errors"
	"testing"
)

// The input-port regression suite: parent order must be explicit (ports),
// stable under JSON round-trips, and conflict-checked. This guards the bug
// where a serialised solver graph delivered (b, LU) instead of (LU, b).

func solverishGraph(t *testing.T) *Graph {
	t.Helper()
	g := New("ports")
	for _, id := range []TaskID{"genA", "genB", "lu", "solve"} {
		if err := g.AddTask(&Task{ID: id, Function: "f", ComputeCost: 1}); err != nil {
			t.Fatal(err)
		}
	}
	// Deliberately connect solve's port-1 input (genB) BEFORE its port-0
	// input would be auto-assigned; then add lu explicitly at port 0.
	if err := g.AddLink(Link{From: "genA", To: "lu", Bytes: 1}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(Link{From: "lu", To: "solve", Bytes: 1}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(Link{From: "genB", To: "solve", Bytes: 1}); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAutoPortAssignment(t *testing.T) {
	g := solverishGraph(t)
	parents := g.Parents("solve")
	if len(parents) != 2 {
		t.Fatalf("parents = %v", parents)
	}
	if parents[0].From != "lu" || parents[0].Port != 0 {
		t.Fatalf("port 0 = %+v", parents[0])
	}
	if parents[1].From != "genB" || parents[1].Port != 1 {
		t.Fatalf("port 1 = %+v", parents[1])
	}
}

func TestPortOrderSurvivesJSONRoundTrip(t *testing.T) {
	g := solverishGraph(t)
	data, err := g.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	parents := back.Parents("solve")
	if parents[0].From != "lu" || parents[1].From != "genB" {
		t.Fatalf("round trip reordered parents: %+v", parents)
	}
	// Round-trip twice for good measure.
	data2, err := back.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back2, err := Decode(data2)
	if err != nil {
		t.Fatal(err)
	}
	parents = back2.Parents("solve")
	if parents[0].From != "lu" || parents[1].From != "genB" {
		t.Fatalf("double round trip reordered parents: %+v", parents)
	}
}

func TestExplicitPortConflict(t *testing.T) {
	g := New("conflict")
	g.AddTask(&Task{ID: "a", Function: "f"})
	g.AddTask(&Task{ID: "b", Function: "f"})
	g.AddTask(&Task{ID: "c", Function: "f"})
	if err := g.AddLink(Link{From: "a", To: "c", Port: 2}); err != nil {
		t.Fatal(err)
	}
	err := g.AddLink(Link{From: "b", To: "c", Port: 2})
	if !errors.Is(err, ErrPortConflict) {
		t.Fatalf("err = %v", err)
	}
}

func TestAddLinkExactKeepsZeroPort(t *testing.T) {
	g := New("exact")
	g.AddTask(&Task{ID: "a", Function: "f"})
	g.AddTask(&Task{ID: "b", Function: "f"})
	g.AddTask(&Task{ID: "c", Function: "f"})
	// Insert the port-1 parent first, then the port-0 parent exactly.
	if err := g.AddLinkExact(Link{From: "b", To: "c", Port: 1}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLinkExact(Link{From: "a", To: "c", Port: 0}); err != nil {
		t.Fatal(err)
	}
	parents := g.Parents("c")
	if parents[0].From != "a" || parents[1].From != "b" {
		t.Fatalf("parents = %+v", parents)
	}
}

func TestAutoPortSkipsExplicitHoles(t *testing.T) {
	g := New("holes")
	for _, id := range []TaskID{"a", "b", "c", "sink"} {
		g.AddTask(&Task{ID: id, Function: "f"})
	}
	if err := g.AddLink(Link{From: "a", To: "sink", Port: 5}); err != nil {
		t.Fatal(err)
	}
	// Auto-assignment must pick a port above the highest existing one.
	if err := g.AddLink(Link{From: "b", To: "sink"}); err != nil {
		t.Fatal(err)
	}
	parents := g.Parents("sink")
	if parents[1].From != "b" || parents[1].Port != 6 {
		t.Fatalf("parents = %+v", parents)
	}
}
