// Package cleanfix is a CLI test fixture with nothing to report: it pins
// the exit-0 side of the exit-code contract.
package cleanfix

// Add is as deterministic as code gets.
func Add(a, b int) int { return a + b }
