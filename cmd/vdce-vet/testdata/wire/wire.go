// Package wirefix is a CLI test fixture: a tiny module that trips one
// deterministic finding per analyzer family, so the -json wire contract and
// the exit-code contract can be pinned by golden tests.
package wirefix

// Keys leaks map iteration order into a slice (maporder).
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Equal compares floats exactly (floateq).
func Equal(a, b float64) bool {
	return a == b
}

// Sum allocates inside a hot loop (allocflow).
//
//vdce:hot
func Sum(xs []float64) float64 {
	var total float64
	for _, x := range xs {
		buf := make([]float64, 1)
		buf[0] = x
		total += buf[0]
	}
	return total
}

// Close compares floats under a reasonless waiver (suppression).
func Close(a, b float64) bool {
	//vdce:ignore floateq
	return a == b
}
