// Command vdce-vet runs the repo's domain-specific static analyzers: the
// mechanical enforcement of the determinism, float-exactness, lock
// discipline, and evaluation-coverage invariants everything else in this
// reproduction leans on — plus the interprocedural tier (detflow,
// lockorder, unitflow) built on the call-graph engine. See internal/lint
// for the rules and the //vdce:ignore suppression convention.
//
// Usage:
//
//	vdce-vet [flags] [packages]
//
// With no packages it analyzes ./... . Exits 1 if any unsuppressed finding
// remains, 0 on a clean tree — CI runs it as a required check.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/lint"
)

// jsonFinding is the machine-readable wire form of one finding: flat
// position fields (no nested token.Position internals leak into the
// contract) plus a ready-to-paste suppression template.
type jsonFinding struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
	// Suppress is the directive that would waive this finding, with the
	// mandatory reason left as a placeholder.
	Suppress string `json:"suppress"`
}

func toJSON(findings []lint.Finding) []jsonFinding {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			Rule:     f.Rule,
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Col:      f.Pos.Column,
			Message:  f.Msg,
			Suppress: fmt.Sprintf("//vdce:ignore %s <reason>", f.Rule),
		})
	}
	return out
}

func emitJSON(v any) int {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintf(os.Stderr, "vdce-vet: %v\n", err)
		return 2
	}
	return 0
}

// githubEscape applies the workflow-command escaping rules to a message.
func githubEscape(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

func run() int {
	list := flag.Bool("list", false, "list the analyzers and exit")
	rules := flag.String("rules", "", "comma-separated analyzer subset (default: all)")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON")
	github := flag.Bool("github", false, "emit findings as GitHub ::error annotations")
	inventory := flag.Bool("inventory", false, "list every //vdce:ignore directive instead of running analyzers")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: vdce-vet [flags] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *rules != "" {
		want := map[string]bool{}
		for _, r := range strings.Split(*rules, ",") {
			want[strings.TrimSpace(r)] = true
		}
		var picked []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				picked = append(picked, a)
				delete(want, a.Name)
			}
		}
		if len(want) > 0 {
			unknown := make([]string, 0, len(want))
			for r := range want {
				unknown = append(unknown, r)
			}
			sort.Strings(unknown)
			fmt.Fprintf(os.Stderr, "vdce-vet: unknown rule(s): %s\n", strings.Join(unknown, ", "))
			return 2
		}
		analyzers = picked
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load("", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vdce-vet: %v\n", err)
		return 2
	}

	if *inventory {
		dirs := lint.Inventory(pkgs)
		if *asJSON {
			return emitJSON(dirs)
		}
		for _, d := range dirs {
			scope := ""
			if d.FileWide {
				scope = " (file-wide)"
			}
			fmt.Printf("%s:%d: %s%s — %s\n", d.File, d.Line, strings.Join(d.Rules, ","), scope, d.Reason)
		}
		fmt.Fprintf(os.Stderr, "vdce-vet: %d suppression(s) in %d package(s)\n", len(dirs), len(pkgs))
		return 0
	}

	findings := lint.Run(pkgs, analyzers)
	switch {
	case *asJSON:
		if code := emitJSON(toJSON(findings)); code != 0 {
			return code
		}
	case *github:
		for _, f := range findings {
			fmt.Printf("::error file=%s,line=%d,col=%d,title=vdce-vet %s::%s\n",
				f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, githubEscape(f.Msg))
		}
	default:
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "vdce-vet: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		return 1
	}
	return 0
}

func main() {
	os.Exit(run())
}
