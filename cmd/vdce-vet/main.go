// Command vdce-vet runs the repo's domain-specific static analyzers: the
// mechanical enforcement of the determinism, float-exactness, lock
// discipline, and evaluation-coverage invariants everything else in this
// reproduction leans on — plus the interprocedural tier (detflow,
// lockorder, unitflow) built on the call-graph engine and the
// performance-contract tier (allocflow) over //vdce:hot cones. See
// internal/lint for the rules and the //vdce:ignore suppression convention.
//
// Usage:
//
//	vdce-vet [flags] [packages]
//
// With no packages it analyzes ./... . Exit codes are distinct so CI can
// tell a dirty tree from a broken driver: 0 = clean, 1 = findings remain,
// 2 = driver error (bad flags, unknown rule, load or type-check failure).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/lint"
)

// The exit-code contract (pinned by TestExitCodes, consumed by CI).
const (
	exitClean    = 0
	exitFindings = 1 // at least one unsuppressed finding
	exitError    = 2 // driver failure: flags, load, type-check, or encoding
)

// jsonFinding is the machine-readable wire form of one finding: flat
// position fields (no nested token.Position internals leak into the
// contract) plus a ready-to-paste suppression template.
type jsonFinding struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
	// Suppress is the directive that would waive this finding, with the
	// mandatory reason left as a placeholder.
	Suppress string `json:"suppress"`
}

func toJSON(findings []lint.Finding) []jsonFinding {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			Rule:     f.Rule,
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Col:      f.Pos.Column,
			Message:  f.Msg,
			Suppress: fmt.Sprintf("//vdce:ignore %s <reason>", f.Rule),
		})
	}
	return out
}

func emitJSON(stdout, stderr io.Writer, v any) int {
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintf(stderr, "vdce-vet: %v\n", err)
		return exitError
	}
	return exitClean
}

// githubEscape applies the workflow-command escaping rules to a message.
func githubEscape(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vdce-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	rules := fs.String("rules", "", "comma-separated analyzer subset (default: all)")
	asJSON := fs.Bool("json", false, "emit machine-readable JSON")
	github := fs.Bool("github", false, "emit findings as GitHub ::error annotations")
	inventory := fs.Bool("inventory", false, "list every //vdce:ignore directive instead of running analyzers")
	escapes := fs.Bool("escapes", false, "report compiler escape analysis over the //vdce:hot cones instead of running analyzers")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: vdce-vet [flags] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return exitError
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return exitClean
	}
	if *rules != "" {
		want := map[string]bool{}
		for _, r := range strings.Split(*rules, ",") {
			want[strings.TrimSpace(r)] = true
		}
		var picked []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				picked = append(picked, a)
				delete(want, a.Name)
			}
		}
		if len(want) > 0 {
			unknown := make([]string, 0, len(want))
			for r := range want {
				unknown = append(unknown, r)
			}
			sort.Strings(unknown)
			fmt.Fprintf(stderr, "vdce-vet: unknown rule(s): %s (registered: %s)\n",
				strings.Join(unknown, ", "), strings.Join(lint.RuleNames(), ", "))
			return exitError
		}
		analyzers = picked
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	if *escapes {
		rep, err := lint.Escapes("", patterns...)
		if err != nil {
			fmt.Fprintf(stderr, "vdce-vet: %v\n", err)
			return exitError
		}
		if *asJSON {
			return emitJSON(stdout, stderr, rep.Inventory)
		}
		var b strings.Builder
		rep.WriteTo(&b)
		fmt.Fprint(stdout, b.String())
		return exitClean
	}

	pkgs, err := lint.Load("", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "vdce-vet: %v\n", err)
		return exitError
	}

	if *inventory {
		dirs := lint.Inventory(pkgs)
		if *asJSON {
			return emitJSON(stdout, stderr, dirs)
		}
		for _, d := range dirs {
			scope := ""
			if d.FileWide {
				scope = " (file-wide)"
			}
			fmt.Fprintf(stdout, "%s:%d: %s%s — %s\n", d.File, d.Line, strings.Join(d.Rules, ","), scope, d.Reason)
		}
		fmt.Fprintf(stderr, "vdce-vet: %d suppression(s) in %d package(s)\n", len(dirs), len(pkgs))
		return exitClean
	}

	findings := lint.Run(pkgs, analyzers)
	switch {
	case *asJSON:
		if code := emitJSON(stdout, stderr, toJSON(findings)); code != exitClean {
			return code
		}
	case *github:
		for _, f := range findings {
			fmt.Fprintf(stdout, "::error file=%s,line=%d,col=%d,title=vdce-vet %s::%s\n",
				f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, githubEscape(f.Msg))
		}
	default:
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "vdce-vet: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		return exitFindings
	}
	return exitClean
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
