// Command vdce-vet runs the repo's domain-specific static analyzers: the
// mechanical enforcement of the determinism, float-exactness, lock
// discipline, and evaluation-coverage invariants everything else in this
// reproduction leans on. See internal/lint for the rules and the
// //vdce:ignore suppression convention.
//
// Usage:
//
//	vdce-vet [flags] [packages]
//
// With no packages it analyzes ./... . Exits 1 if any unsuppressed finding
// remains, 0 on a clean tree — CI runs it as a required check.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	rules := flag.String("rules", "", "comma-separated analyzer subset (default: all)")
	asJSON := flag.Bool("json", false, "emit findings as JSON")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: vdce-vet [flags] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *rules != "" {
		want := map[string]bool{}
		for _, r := range strings.Split(*rules, ",") {
			want[strings.TrimSpace(r)] = true
		}
		var picked []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				picked = append(picked, a)
				delete(want, a.Name)
			}
		}
		if len(want) > 0 {
			unknown := make([]string, 0, len(want))
			for r := range want {
				unknown = append(unknown, r)
			}
			sort.Strings(unknown)
			fmt.Fprintf(os.Stderr, "vdce-vet: unknown rule(s): %s\n", strings.Join(unknown, ", "))
			os.Exit(2)
		}
		analyzers = picked
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load("", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vdce-vet: %v\n", err)
		os.Exit(2)
	}
	findings := lint.Run(pkgs, analyzers)
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "vdce-vet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "vdce-vet: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}
