package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"go/token"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/lint"
)

// update regenerates testdata/wire_golden.json from the live analyzers:
//
//	go test ./cmd/vdce-vet -run TestJSONGolden -update
var update = flag.Bool("update", false, "rewrite the -json wire golden from current output")

// chdir switches into dir for the duration of the test. The CLI fixtures
// under testdata/ are their own modules, so run() must execute from inside
// them for go list to resolve packages against the fixture go.mod.
func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(old); err != nil {
			t.Fatal(err)
		}
	})
}

func TestToJSONFields(t *testing.T) {
	in := []lint.Finding{{
		Rule: "detflow",
		Pos:  token.Position{Filename: "a/b.go", Line: 12, Column: 7},
		Msg:  "value derived from map iteration order reaches a schedule output",
	}}
	got := toJSON(in)
	want := []jsonFinding{{
		Rule:     "detflow",
		File:     "a/b.go",
		Line:     12,
		Col:      7,
		Message:  "value derived from map iteration order reaches a schedule output",
		Suppress: "//vdce:ignore detflow <reason>",
	}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("toJSON = %+v, want %+v", got, want)
	}
	// The wire field names are the contract consumed by CI tooling.
	raw, err := json.Marshal(got[0])
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"rule", "file", "line", "col", "message", "suppress"} {
		if _, ok := m[k]; !ok {
			t.Errorf("wire form missing %q key: %s", k, raw)
		}
	}
}

func TestGithubEscape(t *testing.T) {
	if got := githubEscape("50% done\r\nnext"); got != "50%25 done%0D%0Anext" {
		t.Errorf("githubEscape = %q", got)
	}
}

// TestUnknownRules pins the -rules error contract: an unrecognized name is a
// driver error (exit 2) and the message lists both the offenders and the
// full registered set, so a typo is self-correcting.
func TestUnknownRules(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-rules", "nosuch,maporder,alsonot", "./..."}, &stdout, &stderr)
	if code != exitError {
		t.Fatalf("exit = %d, want %d (driver error)", code, exitError)
	}
	msg := stderr.String()
	if !strings.Contains(msg, "unknown rule(s): alsonot, nosuch") {
		t.Errorf("stderr does not name the unknown rules (sorted, known ones excluded): %q", msg)
	}
	for _, name := range lint.RuleNames() {
		if !strings.Contains(msg, name) {
			t.Errorf("stderr does not list registered rule %q: %q", name, msg)
		}
	}
}

// TestExitCodes pins the three-way exit contract CI depends on: 0 = clean
// tree, 1 = findings remain, 2 = the driver itself failed. The clean and
// wire fixtures under testdata/ are standalone modules exercising the first
// two; flag and load failures exercise the third.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		dir  string // fixture module to run from ("" = stay put)
		args []string
		want int
	}{
		{"clean tree", "testdata/clean", []string{"./..."}, exitClean},
		{"findings", "testdata/wire", []string{"./..."}, exitFindings},
		{"findings as json", "testdata/wire", []string{"-json", "./..."}, exitFindings},
		{"unknown rule", "testdata/clean", []string{"-rules", "nosuch", "./..."}, exitError},
		{"bad pattern", "testdata/clean", []string{"./no/such/dir"}, exitError},
		{"bad flag", "testdata/clean", []string{"-definitely-not-a-flag"}, exitError},
	}
	base, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			chdir(t, filepath.Join(base, filepath.FromSlash(tc.dir)))
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != tc.want {
				t.Errorf("run(%v) = %d, want %d\nstdout: %s\nstderr: %s",
					tc.args, code, tc.want, stdout.String(), stderr.String())
			}
		})
	}
}

// TestJSONGolden pins the -json wire contract end to end against the wire
// fixture: one finding per analyzer family, byte-for-byte. File paths come
// back absolute from go list, so they are normalized to fixture-relative
// before comparison. Regenerate with -update after an intended change.
func TestJSONGolden(t *testing.T) {
	base, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join(base, "testdata", "wire_golden.json")
	fixture := filepath.Join(base, "testdata", "wire")
	chdir(t, fixture)

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "./..."}, &stdout, &stderr); code != exitFindings {
		t.Fatalf("exit = %d, want %d\nstderr: %s", code, exitFindings, stderr.String())
	}
	got := strings.ReplaceAll(stdout.String(), fixture+string(filepath.Separator), "")

	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("-json output drifted from golden.\nRegenerate with -update if the change is intended.\ngot:\n%s\nwant:\n%s", got, want)
	}
}
