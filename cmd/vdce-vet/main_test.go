package main

import (
	"encoding/json"
	"go/token"
	"reflect"
	"testing"

	"repro/internal/lint"
)

func TestToJSONFields(t *testing.T) {
	in := []lint.Finding{{
		Rule: "detflow",
		Pos:  token.Position{Filename: "a/b.go", Line: 12, Column: 7},
		Msg:  "value derived from map iteration order reaches a schedule output",
	}}
	got := toJSON(in)
	want := []jsonFinding{{
		Rule:     "detflow",
		File:     "a/b.go",
		Line:     12,
		Col:      7,
		Message:  "value derived from map iteration order reaches a schedule output",
		Suppress: "//vdce:ignore detflow <reason>",
	}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("toJSON = %+v, want %+v", got, want)
	}
	// The wire field names are the contract consumed by CI tooling.
	raw, err := json.Marshal(got[0])
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"rule", "file", "line", "col", "message", "suppress"} {
		if _, ok := m[k]; !ok {
			t.Errorf("wire form missing %q key: %s", k, raw)
		}
	}
}

func TestGithubEscape(t *testing.T) {
	if got := githubEscape("50% done\r\nnext"); got != "50%25 done%0D%0Anext" {
		t.Errorf("githubEscape = %q", got)
	}
}
