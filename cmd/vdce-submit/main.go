// Command vdce-submit is the VDCE client: it sends an application flow
// graph to a running vdce-server site for distributed scheduling and
// execution, then prints the resource allocation table and the outputs.
//
// The application comes either from a stored AFG JSON file (-afg) or from a
// built-in generator (-app linsolver|c3i|fourier).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/rpc"
	"os"
	"sort"

	"repro/internal/afg"
	"repro/internal/site"
	"repro/internal/workload"
)

func main() {
	server := flag.String("server", "127.0.0.1:9001", "vdce-server RPC address")
	afgPath := flag.String("afg", "", "path to a stored AFG JSON file")
	app := flag.String("app", "linsolver", "built-in application: linsolver, c3i, fourier")
	n := flag.Int("n", 128, "problem size (matrix n / signal length / samples)")
	seed := flag.Int("seed", 1, "workload seed")
	parallel := flag.Bool("parallel", false, "run the LU task in parallel mode")
	policy := flag.String("policy", "", "scheduling policy by name (heft, cpop, eft, faithful, ...; empty = server default)")
	flag.Parse()

	var data []byte
	var err error
	if *afgPath != "" {
		data, err = os.ReadFile(*afgPath)
		if err != nil {
			log.Fatalf("vdce-submit: %v", err)
		}
		if _, err := afg.Decode(data); err != nil {
			log.Fatalf("vdce-submit: invalid AFG: %v", err)
		}
	} else {
		var g *afg.Graph
		switch *app {
		case "linsolver":
			g, err = workload.LinearSolver(nil, *n, *seed, *parallel, 2)
		case "c3i":
			g, err = workload.C3IScenario(nil, 4, *n, *seed)
		case "fourier":
			g, err = workload.FourierPipeline(nil, *n, 17, *seed)
		default:
			log.Fatalf("vdce-submit: unknown app %q", *app)
		}
		if err != nil {
			log.Fatalf("vdce-submit: %v", err)
		}
		data, err = g.Encode()
		if err != nil {
			log.Fatalf("vdce-submit: %v", err)
		}
	}

	client, err := rpc.Dial("tcp", *server)
	if err != nil {
		log.Fatalf("vdce-submit: dial %s: %v", *server, err)
	}
	defer client.Close()

	var reply site.SubmitReply
	if err := client.Call("Site.Submit", site.SubmitArgs{AFG: data, Policy: *policy}, &reply); err != nil {
		log.Fatalf("vdce-submit: %v", err)
	}

	fmt.Printf("Resource allocation table (%d tasks):\n", len(reply.Table))
	var ids []afg.TaskID
	for id := range reply.Table {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		a := reply.Table[id]
		fmt.Printf("  %-12s -> %s/%s (predicted %.4gs)\n", id, a.Site, a.Host, a.Predicted)
	}
	fmt.Printf("Makespan: %.4gs, reschedules: %d\n", reply.MakespanSec, reply.Rescheduled)
	if len(reply.Outputs) > 0 {
		fmt.Println("Outputs:")
		var outs []afg.TaskID
		for id := range reply.Outputs {
			outs = append(outs, id)
		}
		sort.Slice(outs, func(i, j int) bool { return outs[i] < outs[j] })
		for _, id := range outs {
			fmt.Printf("  %-12s %s\n", id, reply.Outputs[id])
		}
	}
}
