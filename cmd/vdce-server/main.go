// Command vdce-server runs one VDCE site as a standalone process: host
// pool, site repository, Resource Controller (Group Managers + Monitor
// daemons), the Host Selection RPC service, and the distributed submission
// endpoint. Several vdce-server processes on one machine form a
// multi-process VDCE (the paper's Fig 1 on localhost).
//
// Example two-site deployment:
//
//	vdce-server -site syracuse -listen 127.0.0.1:9001 -peers rome=127.0.0.1:9002 &
//	vdce-server -site rome     -listen 127.0.0.1:9002 -peers syracuse=127.0.0.1:9001 &
//	vdce-submit -server 127.0.0.1:9001 -app linsolver -n 128
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/netsim"
	"repro/internal/repository"
	"repro/internal/resource"
	"repro/internal/scheduler"
	"repro/internal/site"
)

func main() {
	siteName := flag.String("site", "syracuse", "site name")
	hosts := flag.Int("hosts", 4, "number of simulated hosts at this site")
	listen := flag.String("listen", "127.0.0.1:9001", "RPC listen address")
	peers := flag.String("peers", "", "comma-separated peer sites: name=addr,...")
	period := flag.Duration("monitor-period", 500*time.Millisecond, "monitoring period")
	spread := flag.Float64("spread", 4, "host speed heterogeneity (max/min)")
	seed := flag.Int64("seed", 1, "host generation seed")
	sockets := flag.Bool("sockets", false, "ship inter-task data through TCP proxies")
	threshold := flag.Float64("load-threshold", 0, "QoS load threshold (0 = disabled)")
	repoPath := flag.String("repo", "", "site repository file: loaded at startup if present, saved on shutdown")
	schedWorkers := flag.Int("sched-workers", 0, "scheduling concurrency: site fan-out and batch workers (0 = GOMAXPROCS, 1 = serial)")
	availAware := flag.Bool("avail-aware", false, "deprecated alias for -policy eft")
	policy := flag.String("policy", "", fmt.Sprintf("default scheduling policy (one of: %s; empty = faithful, or eft with -avail-aware)", strings.Join(scheduler.Policies(), ", ")))
	flag.Parse()

	if *policy != "" {
		if _, err := scheduler.Lookup(*policy); err != nil {
			log.Fatalf("vdce-server: %v", err)
		}
	}
	pool := resource.GenerateSite(*siteName, *hosts, *spread, *seed)
	net := netsim.NYNET(0.001)
	m, err := site.NewManager(*siteName, pool, net, nil, site.Config{
		UseSockets:           *sockets,
		LoadThreshold:        *threshold,
		SchedulerConcurrency: *schedWorkers,
		AvailabilityAware:    *availAware,
		Policy:               *policy,
	})
	if err != nil {
		log.Fatalf("vdce-server: %v", err)
	}
	m.RunTrialWeights()
	if *repoPath != "" {
		if saved, err := repository.LoadFile(*repoPath); err == nil {
			// Carry persistent state forward: user accounts and measured
			// task-execution history survive restarts.
			for _, f := range saved.Tasks.Functions() {
				if rec, err := saved.Tasks.Get(f); err == nil {
					m.Repo.Tasks.Put(rec)
				}
			}
			fmt.Printf("vdce-server: restored task history from %s\n", *repoPath)
		} else if !os.IsNotExist(err) {
			log.Printf("vdce-server: repo load: %v", err)
		}
	}

	var remotes []*site.RemoteSelector
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			parts := strings.SplitN(strings.TrimSpace(p), "=", 2)
			if len(parts) != 2 {
				log.Fatalf("vdce-server: bad -peers entry %q (want name=addr)", p)
			}
			remotes = append(remotes, site.NewRemoteSelector(parts[0], parts[1]))
		}
	}

	addr, stop, err := m.ServeWithPeers(*listen, remotes)
	if err != nil {
		log.Fatalf("vdce-server: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	m.StartMonitors(ctx, *period)

	fmt.Printf("vdce-server: site %s with %d hosts serving on %s\n", *siteName, *hosts, addr)
	for _, h := range pool.Hosts() {
		fmt.Printf("  %-18s %-8s speed %.2fx  mem %dMB\n",
			h.Spec.Name, h.Spec.Arch, h.Spec.SpeedFactor, h.Spec.TotalMemory>>20)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("vdce-server: shutting down")
	if *repoPath != "" {
		if err := m.Repo.SaveFile(*repoPath); err != nil {
			log.Printf("vdce-server: repo save: %v", err)
		} else {
			fmt.Printf("vdce-server: repository saved to %s\n", *repoPath)
		}
	}
	cancel()
	stop()
	for _, r := range remotes {
		r.Close()
	}
}
