// Command vdce-editor serves the Application Editor's web API: the
// task-library menus, AFG validation, and user login — the stand-in for the
// paper's Java-applet editor served by the Site Manager.
//
//	vdce-editor -listen 127.0.0.1:8080 -user haluk -password pw
//	curl http://127.0.0.1:8080/libraries
//	curl -X POST -d @app.afg.json http://127.0.0.1:8080/validate
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"repro/internal/editor"
	"repro/internal/repository"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8080", "HTTP listen address")
	user := flag.String("user", "", "seed user account name (empty disables auth)")
	password := flag.String("password", "", "seed user account password")
	flag.Parse()

	var users *repository.UserAccountsDB
	if *user != "" {
		users = repository.NewUserAccountsDB()
		if _, err := users.Add(repository.UserAccount{
			UserName: *user, Password: *password, Priority: 1, AccessDomain: "wide-area",
		}); err != nil {
			log.Fatalf("vdce-editor: %v", err)
		}
	}
	srv := editor.NewServer(nil, users)
	fmt.Printf("vdce-editor: serving on http://%s (endpoints: /libraries /tasks /validate /login)\n", *listen)
	log.Fatal(http.ListenAndServe(*listen, srv.Handler()))
}
