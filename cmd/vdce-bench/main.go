// Command vdce-bench regenerates the paper's evaluation: one experiment per
// figure (plus the two quantitative claims made in prose), printed as
// aligned tables, CSV, or JSON.
//
// Usage:
//
//	vdce-bench                       # run everything
//	vdce-bench -exp FIG4,FIG5        # run selected experiments
//	vdce-bench -csv                  # CSV output
//	vdce-bench -json                 # machine-readable JSON (CI artifacts)
//	vdce-bench -seed 7               # change the deterministic seed
//	vdce-bench -cpuprofile cpu.prof  # profile the run (go tool pprof)
//	vdce-bench -memprofile mem.prof  # heap profile at exit
//
// The RANKING experiment's grid is adjustable from the command line:
//
//	vdce-bench -exp RANKING -ranking-sizes 10,20,30 -ranking-ccrs 0.5,1,2 -ranking-graphs 1
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/experiments"
)

var experimentFuncs = map[string]func(int64) (*experiments.Result, error){
	"FIG1":      experiments.Fig1MultiSite,
	"FIG2":      experiments.Fig2Pipeline,
	"FIG3":      experiments.Fig3LinearSolver,
	"FIG4":      experiments.Fig4SiteScheduler,
	"FIG5":      experiments.Fig5HostSelection,
	"FIG6":      experiments.Fig6Monitoring,
	"FIG7":      experiments.Fig7ExecSetup,
	"TAB-PRED":  experiments.PredictionAccuracy,
	"TAB-SCHED": experiments.ScheduleQuality,
	"SCALE":     experiments.ScaleScheduling,
	"LEDGER":    experiments.AvailabilityScheduling,
	"POLICY":    experiments.PolicyComparison,
	"RANKING":   experiments.Ranking,
}

var experimentOrder = []string{
	"FIG1", "FIG2", "FIG3", "FIG4", "FIG5", "FIG6", "FIG7", "TAB-PRED", "TAB-SCHED", "SCALE", "LEDGER", "POLICY", "RANKING",
}

func main() {
	// run does the work so its defers (profile flushes) fire exactly once
	// before the exit code is surfaced — os.Exit in main would skip them.
	os.Exit(run())
}

func run() int {
	exp := flag.String("exp", "all", "comma-separated experiment ids (FIG1..FIG7, TAB-PRED, TAB-SCHED, SCALE, LEDGER, POLICY, RANKING) or 'all'")
	seed := flag.Int64("seed", 1, "deterministic seed")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	jsonOut := flag.Bool("json", false, "emit one JSON document for all selected experiments (rows + metrics)")
	policies := flag.String("policies", "", "restrict the POLICY experiment to these comma-separated scheduling policies (empty = all registered)")
	rankSizes := flag.String("ranking-sizes", "", "RANKING grid task counts, comma-separated (empty = default grid)")
	rankCCRs := flag.String("ranking-ccrs", "", "RANKING grid CCR values, comma-separated (empty = default grid)")
	rankGraphs := flag.Int("ranking-graphs", 0, "RANKING graphs per grid cell (0 = default)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	// Profiling hooks: hot-path regressions in the scheduling core are
	// diagnosable straight from the evaluation binary, no code edits.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // up-to-date live-object statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	if *policies != "" {
		var names []string
		for _, n := range strings.Split(*policies, ",") {
			names = append(names, strings.TrimSpace(n))
		}
		experimentFuncs["POLICY"] = func(seed int64) (*experiments.Result, error) {
			return experiments.PolicyComparisonFor(seed, names)
		}
	}
	if *rankSizes != "" || *rankCCRs != "" || *rankGraphs > 0 {
		sizes, err := parseInts(*rankSizes)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-ranking-sizes: %v\n", err)
			return 2
		}
		ccrs, err := parseFloats(*rankCCRs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-ranking-ccrs: %v\n", err)
			return 2
		}
		graphs := *rankGraphs
		experimentFuncs["RANKING"] = func(seed int64) (*experiments.Result, error) {
			cfg := experiments.DefaultRankingConfig(seed)
			if len(sizes) > 0 {
				cfg.Sizes = sizes
			}
			if len(ccrs) > 0 {
				cfg.CCRs = ccrs
			}
			if graphs > 0 {
				cfg.GraphsPerCell = graphs
			}
			return experiments.RankingWith(cfg)
		}
	}

	ids := experimentOrder
	if *exp != "all" {
		ids = nil
		for _, id := range strings.Split(*exp, ",") {
			id = strings.ToUpper(strings.TrimSpace(id))
			if _, ok := experimentFuncs[id]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %s\n",
					id, strings.Join(experimentOrder, ", "))
				return 2
			}
			ids = append(ids, id)
		}
	}

	failed := false
	var jsonResults []resultJSON
	for _, id := range ids {
		r, err := experimentFuncs[id](*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			failed = true
			continue
		}
		if *jsonOut {
			jsonResults = append(jsonResults, resultJSON{
				ID:      r.ID,
				Title:   r.Series.Title,
				XLabel:  r.Series.XLabel,
				YLabels: r.Series.YLabels,
				Rows:    r.Series.Rows,
				Metrics: r.Metrics,
			})
			continue
		}
		fmt.Printf("== %s ==\n", r.ID)
		if *csv {
			fmt.Print(r.Series.CSV())
		} else {
			fmt.Print(r.Series.Render())
		}
		fmt.Println()
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonResults); err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			return 2
		}
	}
	if failed {
		return 1
	}
	return 0
}

// resultJSON is one experiment's machine-readable form: the series columns
// plus the headline metrics, the shape the CI artifacts accumulate.
type resultJSON struct {
	ID      string             `json:"id"`
	Title   string             `json:"title"`
	XLabel  string             `json:"xlabel"`
	YLabels []string           `json:"ylabels"`
	Rows    [][]float64        `json:"rows"`
	Metrics map[string]float64 `json:"metrics"`
}

// parseInts parses a comma-separated integer list ("" = nil).
func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// parseFloats parses a comma-separated float list ("" = nil).
func parseFloats(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
