// Command vdce-bench regenerates the paper's evaluation: one experiment per
// figure (plus the two quantitative claims made in prose), printed as
// aligned tables or CSV.
//
// Usage:
//
//	vdce-bench                       # run everything
//	vdce-bench -exp FIG4,FIG5        # run selected experiments
//	vdce-bench -csv                  # CSV output
//	vdce-bench -seed 7               # change the deterministic seed
//	vdce-bench -cpuprofile cpu.prof  # profile the run (go tool pprof)
//	vdce-bench -memprofile mem.prof  # heap profile at exit
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/experiments"
)

var experimentFuncs = map[string]func(int64) (*experiments.Result, error){
	"FIG1":      experiments.Fig1MultiSite,
	"FIG2":      experiments.Fig2Pipeline,
	"FIG3":      experiments.Fig3LinearSolver,
	"FIG4":      experiments.Fig4SiteScheduler,
	"FIG5":      experiments.Fig5HostSelection,
	"FIG6":      experiments.Fig6Monitoring,
	"FIG7":      experiments.Fig7ExecSetup,
	"TAB-PRED":  experiments.PredictionAccuracy,
	"TAB-SCHED": experiments.ScheduleQuality,
	"SCALE":     experiments.ScaleScheduling,
	"LEDGER":    experiments.AvailabilityScheduling,
	"POLICY":    experiments.PolicyComparison,
}

var experimentOrder = []string{
	"FIG1", "FIG2", "FIG3", "FIG4", "FIG5", "FIG6", "FIG7", "TAB-PRED", "TAB-SCHED", "SCALE", "LEDGER", "POLICY",
}

func main() {
	// run does the work so its defers (profile flushes) fire exactly once
	// before the exit code is surfaced — os.Exit in main would skip them.
	os.Exit(run())
}

func run() int {
	exp := flag.String("exp", "all", "comma-separated experiment ids (FIG1..FIG7, TAB-PRED, TAB-SCHED, SCALE, LEDGER, POLICY) or 'all'")
	seed := flag.Int64("seed", 1, "deterministic seed")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	policies := flag.String("policies", "", "restrict the POLICY experiment to these comma-separated scheduling policies (empty = all registered)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	// Profiling hooks: hot-path regressions in the scheduling core are
	// diagnosable straight from the evaluation binary, no code edits.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // up-to-date live-object statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	if *policies != "" {
		var names []string
		for _, n := range strings.Split(*policies, ",") {
			names = append(names, strings.TrimSpace(n))
		}
		experimentFuncs["POLICY"] = func(seed int64) (*experiments.Result, error) {
			return experiments.PolicyComparisonFor(seed, names)
		}
	}

	ids := experimentOrder
	if *exp != "all" {
		ids = nil
		for _, id := range strings.Split(*exp, ",") {
			id = strings.ToUpper(strings.TrimSpace(id))
			if _, ok := experimentFuncs[id]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %s\n",
					id, strings.Join(experimentOrder, ", "))
				return 2
			}
			ids = append(ids, id)
		}
	}

	failed := false
	for _, id := range ids {
		r, err := experimentFuncs[id](*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			failed = true
			continue
		}
		fmt.Printf("== %s ==\n", r.ID)
		if *csv {
			fmt.Print(r.Series.CSV())
		} else {
			fmt.Print(r.Series.Render())
		}
		fmt.Println()
	}
	if failed {
		return 1
	}
	return 0
}
