// Command vdce-bench regenerates the paper's evaluation: one experiment per
// figure (plus the two quantitative claims made in prose), printed as
// aligned tables, CSV, or JSON.
//
// Usage:
//
//	vdce-bench                       # run everything
//	vdce-bench -exp FIG4,FIG5        # run selected experiments
//	vdce-bench -csv                  # CSV output
//	vdce-bench -json                 # machine-readable JSON (CI artifacts)
//	vdce-bench -seed 7               # change the deterministic seed
//	vdce-bench -cpuprofile cpu.prof  # profile the run (go tool pprof)
//	vdce-bench -memprofile mem.prof  # heap profile at exit
//
// The RANKING experiment's grid is adjustable from the command line:
//
//	vdce-bench -exp RANKING -ranking-sizes 10,20,30 -ranking-ccrs 0.5,1,2 -ranking-graphs 1
//	vdce-bench -exp RANKING -ranking-workers 8   # parallel grid, bit-identical results
//
// So is the CHURN fault-injection sweep:
//
//	vdce-bench -exp CHURN -churn-sizes 20,40 -churn-ccrs 0.5,2 -churn-graphs 2
//	vdce-bench -exp CHURN -churn-replanners eft,dup -churn-threshold 2 -churn-workers 8
//
// For the performance trajectory, -bench-out writes one BENCH_<ID>.json
// per selected experiment ({bench, ns_per_op, allocs_per_op, commit, date};
// commit from GITHUB_SHA, date from BENCH_DATE when CI sets them):
//
//	vdce-bench -exp RANKING -bench-out bench/
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
)

var experimentFuncs = map[string]func(int64) (*experiments.Result, error){
	"FIG1":      experiments.Fig1MultiSite,
	"FIG2":      experiments.Fig2Pipeline,
	"FIG3":      experiments.Fig3LinearSolver,
	"FIG4":      experiments.Fig4SiteScheduler,
	"FIG5":      experiments.Fig5HostSelection,
	"FIG6":      experiments.Fig6Monitoring,
	"FIG7":      experiments.Fig7ExecSetup,
	"TAB-PRED":  experiments.PredictionAccuracy,
	"TAB-SCHED": experiments.ScheduleQuality,
	"SCALE":     experiments.ScaleScheduling,
	"LEDGER":    experiments.AvailabilityScheduling,
	"POLICY":    experiments.PolicyComparison,
	"RANKING":   experiments.Ranking,
	"CHURN":     experiments.Churn,
}

var experimentOrder = []string{
	"FIG1", "FIG2", "FIG3", "FIG4", "FIG5", "FIG6", "FIG7", "TAB-PRED", "TAB-SCHED", "SCALE", "LEDGER", "POLICY", "RANKING", "CHURN",
}

func main() {
	// run does the work so its defers (profile flushes) fire exactly once
	// before the exit code is surfaced — os.Exit in main would skip them.
	os.Exit(run())
}

func run() int {
	exp := flag.String("exp", "all", "comma-separated experiment ids (FIG1..FIG7, TAB-PRED, TAB-SCHED, SCALE, LEDGER, POLICY, RANKING, CHURN) or 'all'")
	seed := flag.Int64("seed", 1, "deterministic seed")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	jsonOut := flag.Bool("json", false, "emit one JSON document for all selected experiments (rows + metrics)")
	policies := flag.String("policies", "", "restrict the POLICY experiment to these comma-separated scheduling policies (empty = all registered)")
	rankSizes := flag.String("ranking-sizes", "", "RANKING grid task counts, comma-separated (empty = default grid)")
	rankCCRs := flag.String("ranking-ccrs", "", "RANKING grid CCR values, comma-separated (empty = default grid)")
	rankGraphs := flag.Int("ranking-graphs", 0, "RANKING graphs per grid cell (0 = default)")
	rankWorkers := flag.Int("ranking-workers", 0, "RANKING worker-pool size; results are bit-identical for any value (0 = GOMAXPROCS, 1 = serial)")
	churnSizes := flag.String("churn-sizes", "", "CHURN grid task counts, comma-separated (empty = default grid)")
	churnCCRs := flag.String("churn-ccrs", "", "CHURN grid CCR values, comma-separated (empty = default grid)")
	churnGraphs := flag.Int("churn-graphs", 0, "CHURN graphs per grid cell (0 = default)")
	churnWorkers := flag.Int("churn-workers", 0, "CHURN worker-pool size; results are bit-identical for any value (0 = GOMAXPROCS, 1 = serial)")
	churnReplanners := flag.String("churn-replanners", "", "restrict the CHURN experiment to these comma-separated re-planners (empty = all registered)")
	churnThreshold := flag.Float64("churn-threshold", 0, "CHURN overrun threshold as a multiple of the predicted duration (0 = default)")
	benchOut := flag.String("bench-out", "", "directory for per-experiment BENCH_<ID>.json trajectory files (wall ns + allocs per run)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	// Profiling hooks: hot-path regressions in the scheduling core are
	// diagnosable straight from the evaluation binary, no code edits.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // up-to-date live-object statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	if *policies != "" {
		var names []string
		for _, n := range strings.Split(*policies, ",") {
			names = append(names, strings.TrimSpace(n))
		}
		experimentFuncs["POLICY"] = func(seed int64) (*experiments.Result, error) {
			return experiments.PolicyComparisonFor(seed, names)
		}
	}
	if *rankSizes != "" || *rankCCRs != "" || *rankGraphs > 0 || *rankWorkers != 0 {
		sizes, err := parseInts(*rankSizes)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-ranking-sizes: %v\n", err)
			return 2
		}
		ccrs, err := parseFloats(*rankCCRs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-ranking-ccrs: %v\n", err)
			return 2
		}
		graphs, workers := *rankGraphs, *rankWorkers
		experimentFuncs["RANKING"] = func(seed int64) (*experiments.Result, error) {
			cfg := experiments.DefaultRankingConfig(seed)
			if len(sizes) > 0 {
				cfg.Sizes = sizes
			}
			if len(ccrs) > 0 {
				cfg.CCRs = ccrs
			}
			if graphs > 0 {
				cfg.GraphsPerCell = graphs
			}
			cfg.Workers = workers
			return experiments.RankingWith(cfg)
		}
	}
	if *churnSizes != "" || *churnCCRs != "" || *churnGraphs > 0 || *churnWorkers != 0 ||
		*churnReplanners != "" || *churnThreshold > 0 {
		sizes, err := parseInts(*churnSizes)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-churn-sizes: %v\n", err)
			return 2
		}
		ccrs, err := parseFloats(*churnCCRs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-churn-ccrs: %v\n", err)
			return 2
		}
		var replanners []string
		if *churnReplanners != "" {
			for _, n := range strings.Split(*churnReplanners, ",") {
				replanners = append(replanners, strings.TrimSpace(n))
			}
		}
		graphs, workers, threshold := *churnGraphs, *churnWorkers, *churnThreshold
		experimentFuncs["CHURN"] = func(seed int64) (*experiments.Result, error) {
			cfg := experiments.DefaultChurnConfig(seed)
			if len(sizes) > 0 {
				cfg.Sizes = sizes
			}
			if len(ccrs) > 0 {
				cfg.CCRs = ccrs
			}
			if graphs > 0 {
				cfg.GraphsPerCell = graphs
			}
			if len(replanners) > 0 {
				cfg.Replanners = replanners
			}
			if threshold > 0 {
				cfg.Threshold = threshold
			}
			cfg.Workers = workers
			return experiments.ChurnWith(cfg)
		}
	}

	ids := experimentOrder
	if *exp != "all" {
		ids = nil
		for _, id := range strings.Split(*exp, ",") {
			id = strings.ToUpper(strings.TrimSpace(id))
			if _, ok := experimentFuncs[id]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %s\n",
					id, strings.Join(experimentOrder, ", "))
				return 2
			}
			ids = append(ids, id)
		}
	}

	failed := false
	var jsonResults []resultJSON
	for _, id := range ids {
		var m0 runtime.MemStats
		if *benchOut != "" {
			runtime.ReadMemStats(&m0)
		}
		t0 := time.Now()
		r, err := experimentFuncs[id](*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			failed = true
			continue
		}
		if *benchOut != "" {
			var m1 runtime.MemStats
			runtime.ReadMemStats(&m1)
			if err := writeBenchRecord(*benchOut, id, time.Since(t0).Nanoseconds(), m1.Mallocs-m0.Mallocs); err != nil {
				fmt.Fprintf(os.Stderr, "%s: bench-out: %v\n", id, err)
				failed = true
			}
		}
		if *jsonOut {
			jsonResults = append(jsonResults, resultJSON{
				ID:      r.ID,
				Title:   r.Series.Title,
				XLabel:  r.Series.XLabel,
				YLabels: r.Series.YLabels,
				Rows:    r.Series.Rows,
				Metrics: r.Metrics,
			})
			continue
		}
		fmt.Printf("== %s ==\n", r.ID)
		if *csv {
			fmt.Print(r.Series.CSV())
		} else {
			fmt.Print(r.Series.Render())
		}
		fmt.Println()
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonResults); err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			return 2
		}
	}
	if failed {
		return 1
	}
	return 0
}

// benchRecord is one point of the performance trajectory: the wall time
// and allocation count of a single experiment run, stamped with the commit
// and date so the committed BENCH_*.json files graph across history.
type benchRecord struct {
	Bench       string `json:"bench"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp uint64 `json:"allocs_per_op"`
	Commit      string `json:"commit"`
	Date        string `json:"date"`
}

// writeBenchRecord writes dir/BENCH_<id>.json. The commit comes from
// GITHUB_SHA and the date from BENCH_DATE — both set by the CI workflow —
// with a local-clock fallback so ad-hoc runs still produce usable points.
func writeBenchRecord(dir, id string, ns int64, allocs uint64) error {
	date := os.Getenv("BENCH_DATE")
	if date == "" {
		date = time.Now().UTC().Format(time.RFC3339)
	}
	rec := benchRecord{
		Bench:       id,
		NsPerOp:     ns,
		AllocsPerOp: allocs,
		Commit:      os.Getenv("GITHUB_SHA"),
		Date:        date,
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "BENCH_"+id+".json"), append(data, '\n'), 0o644)
}

// resultJSON is one experiment's machine-readable form: the series columns
// plus the headline metrics, the shape the CI artifacts accumulate.
type resultJSON struct {
	ID      string             `json:"id"`
	Title   string             `json:"title"`
	XLabel  string             `json:"xlabel"`
	YLabels []string           `json:"ylabels"`
	Rows    [][]float64        `json:"rows"`
	Metrics map[string]float64 `json:"metrics"`
}

// parseInts parses a comma-separated integer list ("" = nil).
func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// parseFloats parses a comma-separated float list ("" = nil).
func parseFloats(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
