package repro

// One benchmark per paper figure (plus the two quantitative claims made in
// prose). Each wraps the corresponding experiment from internal/experiments
// and reports its headline numbers as custom benchmark metrics, so
// `go test -bench=. -benchmem` regenerates the whole evaluation.

import (
	"testing"

	"repro/internal/experiments"
)

func runExperiment(b *testing.B, f func(int64) (*experiments.Result, error)) {
	b.Helper()
	b.ReportAllocs()
	var last *experiments.Result
	for i := 0; i < b.N; i++ {
		r, err := f(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	for name, v := range last.Metrics {
		b.ReportMetric(v, name)
	}
}

// BenchmarkFig1_MultiSiteEndToEnd — Fig 1: end-to-end execution across a
// growing number of sites at fixed total host count.
func BenchmarkFig1_MultiSiteEndToEnd(b *testing.B) {
	runExperiment(b, experiments.Fig1MultiSite)
}

// BenchmarkFig2_PipelineStages — Fig 2: editor → scheduler → runtime stage
// latency for the linear solver.
func BenchmarkFig2_PipelineStages(b *testing.B) {
	runExperiment(b, experiments.Fig2Pipeline)
}

// BenchmarkFig3_LinearSolver — Fig 3: the flagship Linear Equation Solver
// across problem sizes, sequential vs parallel LU mode.
func BenchmarkFig3_LinearSolver(b *testing.B) {
	runExperiment(b, experiments.Fig3LinearSolver)
}

// BenchmarkFig4_SiteScheduler — Fig 4: transfer-aware site selection vs the
// transfer-blind ablation as WAN latency grows.
func BenchmarkFig4_SiteScheduler(b *testing.B) {
	runExperiment(b, experiments.Fig4SiteScheduler)
}

// BenchmarkFig5_HostSelection — Fig 5: prediction-driven host selection vs
// random / round-robin / min-load / fastest-host baselines.
func BenchmarkFig5_HostSelection(b *testing.B) {
	runExperiment(b, experiments.Fig5HostSelection)
}

// BenchmarkFig6_Monitoring — Fig 6: change-filtered monitoring traffic vs
// send-all, and failure-detection latency.
func BenchmarkFig6_Monitoring(b *testing.B) {
	runExperiment(b, experiments.Fig6Monitoring)
}

// BenchmarkFig7_ExecSetup — Fig 7: Data Manager channel setup + execution
// over real sockets as task count grows.
func BenchmarkFig7_ExecSetup(b *testing.B) {
	runExperiment(b, experiments.Fig7ExecSetup)
}

// BenchmarkPredictionAccuracy — §2.2.1: prediction error by forecasting
// policy (the forecasting-window ablation).
func BenchmarkPredictionAccuracy(b *testing.B) {
	runExperiment(b, experiments.PredictionAccuracy)
}

// BenchmarkScheduleQuality — §2.2: level-priority list scheduling vs FIFO
// priority (ablation) and random placement, relative to the critical-path
// lower bound.
func BenchmarkScheduleQuality(b *testing.B) {
	runExperiment(b, experiments.ScheduleQuality)
}

// BenchmarkScaleScheduling — the ROADMAP's scale direction: batch dispatch
// throughput of 6×1000-task graphs against 32 sites, serial walk vs the
// concurrent subsystem (site fan-out + prediction cache + batch API). The
// headline metrics are speedup and tasks_per_s; the experiment itself
// verifies that both paths produce identical allocation tables.
func BenchmarkScaleScheduling(b *testing.B) {
	runExperiment(b, experiments.ScaleScheduling)
}

// BenchmarkLedgerScheduling — combined simulated makespan of the batch
// under the three placement configurations: paper-faithful (ledger-free
// concurrent batch), availability-aware (earliest finish time, private
// timelines), and availability-aware with the shared cross-application
// load ledger. Headline metrics are makespan_{faithful,eft,ledger} and
// ledger_improvement_pct.
func BenchmarkLedgerScheduling(b *testing.B) {
	runExperiment(b, experiments.AvailabilityScheduling)
}

// BenchmarkPolicyComparison — every registered scheduling policy (faithful,
// eft, ledger, heft, cpop, and the naive baselines) scored by combined
// simulated makespan on the 6×1000-task / 32-site workload. Headline
// metrics are makespan_<policy> plus faithful_over_{heft,cpop}.
func BenchmarkPolicyComparison(b *testing.B) {
	runExperiment(b, experiments.PolicyComparison)
}

// BenchmarkChurn — seeded host-churn fault injection: every registered
// frontier re-planner (heft rescan, eft patch, dup hedging) scored by mean
// makespan degradation vs the fault-free run over the dagen grid. Headline
// metrics are degradation_<replanner> plus reschedule/kill counters.
func BenchmarkChurn(b *testing.B) {
	runExperiment(b, experiments.Churn)
}
