// Package repro is a Go reproduction of "The Software Architecture of a
// Virtual Distributed Computing Environment" (Topcuoglu, Hariri, Furmanski,
// Valente et al., HPDC 1997): the VDCE metacomputing middleware — the
// Application Editor, the distributed Application Scheduler with its
// performance-prediction model, and the Runtime System (Control Manager +
// Data Manager) — plus the substrates it depends on (task libraries, site
// repositories, resource monitoring, a WAN model) and an evaluation harness
// reproducing every figure in the paper.
//
// See README.md for the architecture overview, the per-experiment index,
// and how to run the benchmarks. The root-level bench_test.go wraps each
// experiment in a testing.B benchmark.
package repro
