// Package repro is a Go reproduction of "The Software Architecture of a
// Virtual Distributed Computing Environment" (Topcuoglu, Hariri, Furmanski,
// Valente et al., HPDC 1997): the VDCE metacomputing middleware — the
// Application Editor, the distributed Application Scheduler with its
// performance-prediction model, and the Runtime System (Control Manager +
// Data Manager) — plus the substrates it depends on (task libraries, site
// repositories, resource monitoring, a WAN model) and an evaluation harness
// reproducing every figure in the paper.
//
// Scheduling is organised around a pluggable policy API: every heuristic
// implements scheduler.Policy (Name + Schedule(ctx, *Request)) and
// registers by name, so algorithms are selected as data end to end — the
// Site.ScheduleBatch RPC, vdce-server -policy, vdce-submit -policy, and
// the experiments harness all take a policy name. Registered policies:
// the paper-faithful Site Scheduler ("faithful"), its earliest-finish-time
// variants ("eft", "ledger" — the latter with a shared cross-application
// load ledger), the HEFT and CPOP list-scheduling heuristics of Topcuoglu
// et al. ("heft", "cpop"), and the naive baselines ("random", "roundrobin",
// "minload", "fastest"). experiments.PolicyComparison scores them all by
// combined simulated makespan on one workload, and an incremental
// event-driven simulator (near-linear in tasks and links on realistic
// allocations) does the scoring at scale. The paper-faithful algorithm
// remains the default policy and the evaluation baseline.
//
// # Evaluation methodology
//
// The evaluation reproduces the authors' methodology, not just their
// architecture. internal/dagen generates seeded parametric DAGs from the
// classic knobs — task count, CCR (communication-to-computation ratio),
// shape α, out-degree, and host-heterogeneity range β — plus structured
// Gaussian-elimination and FFT task graphs; internal/metrics scores
// schedules by Schedule Length Ratio (makespan over the critical-path
// lower bound), speedup against the best serial host, efficiency, and
// pairwise better/equal/worse counts; and scheduler.ValidateSchedule is an
// independent, deliberately naive replay of the execution semantics that
// audits every allocation table for precedence feasibility, per-host
// mutual exclusion, and transfer-time accounting — its makespan must match
// the simulator's bit for bit. The RANKING experiment sweeps the grid
// (sizes × CCRs) across every registered policy (vdce-bench -exp RANKING,
// with -ranking-sizes/-ranking-ccrs/-ranking-graphs and -json for
// machine-readable output); a fixed-seed golden run is committed under
// internal/experiments/testdata and enforced by a regression test with an
// -update re-blessing flag. Fuzz targets (FuzzDagenValid, FuzzGraphIndex)
// pin the generator and dense-index invariants.
//
// # Performance
//
// The scheduling core is dense: afg.Graph caches an integer-indexed view
// (Graph.Index — TaskID→int, CSR adjacency, topological order), per-(task,
// host) predictions sit in one contiguous CostMatrix built in a single
// batched pass and shared across policies via a CostCache, ranks and
// ready-set walks run on slice-indexed priority heaps, host timelines
// binary-search their insertion gaps, and the cross-application LoadLedger
// is striped with bulk-snapshot LedgerViews instead of a global mutex.
// Invariants: dense indices follow ascending TaskID order (index
// tie-breaks equal id tie-breaks), arc transfer volumes are resolved when
// the index is built (task cost metadata is frozen during scheduling), and
// structural graph mutations invalidate the cached index. The map-keyed
// originals are retained as test oracles with equivalence tests pinning
// identical allocation tables. Net effect on the POLICY experiment
// (9 policies × 6×1000-task graphs × 32 sites): ~5× faster with ~92%
// fewer allocations; README.md carries the before/after table.
//
// On top of the dense core, per-schedule working state — rank vectors,
// heap backing arrays, host timelines and their span slabs, the
// simulator's event-loop state — is recycled through a pooled scratch
// arena (internal/scheduler/scratch.go documents the pooling contract:
// schedule output is never pooled, every pooled buffer is overwritten or
// explicitly reset, scratch is function-scoped). The RANKING grid
// parallelizes over (size, CCR, graph) cells with a bounded worker pool
// (RankingConfig.Workers, vdce-bench -ranking-workers) whose results are
// bit-identical to the serial run for any worker count — each cell seeds
// its own environment and RNG. The XL scale point, BenchmarkXLSchedule,
// schedules a 100k-task DAG across 1000 hosts (8 sites × 125) in one
// HEFT pass; a scheduled CI job tracks it weekly without gating merges.
//
// # Fault tolerance and rescheduling
//
// Executions recover from host churn on two levels. Mid-flight, a dead
// host triggers one whole-frontier re-plan: the runtime hands the
// unstarted tasks to a scheduler.Replanner — a registry mirroring the
// policy API with a full HEFT rescan of the frontier ("heft"), cheap EFT
// patching of only the suspect tasks ("eft"), and EFT patching plus
// duplication of critical tasks onto idle hosts ("dup") — which repairs
// the committed table against the settled work's timelines; every repaired
// table is certified by ValidateSchedule before adoption
// (scheduler.CertifyReplan), and the per-task §2.3.1 rescheduling request
// remains the fallback. Between executions, the monitoring plane catches
// up: a Group Manager round marks dead hosts down in the repository,
// evicts their prediction-cache entries, resets per-host filter state on
// recovery, and fans deviation signals out to in-flight executions
// (site.Manager.SubscribeDeviations), so subsequent schedules avoid the
// dead hosts outright. The CHURN experiment (vdce-bench -exp CHURN, flags
// -churn-sizes/-churn-ccrs/-churn-replanners/-churn-threshold) replays
// seeded host-failure/straggler traces over the dagen grid and scores
// every re-planner by makespan degradation against the fault-free run —
// deterministic and bit-identical for any worker count.
//
// See README.md for the architecture overview, the policy table, the
// per-experiment index, and how to run the benchmarks. The root-level
// bench_test.go wraps each experiment in a testing.B benchmark.
package repro
