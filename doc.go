// Package repro is a Go reproduction of "The Software Architecture of a
// Virtual Distributed Computing Environment" (Topcuoglu, Hariri, Furmanski,
// Valente et al., HPDC 1997): the VDCE metacomputing middleware — the
// Application Editor, the distributed Application Scheduler with its
// performance-prediction model, and the Runtime System (Control Manager +
// Data Manager) — plus the substrates it depends on (task libraries, site
// repositories, resource monitoring, a WAN model) and an evaluation harness
// reproducing every figure in the paper.
//
// Beyond the paper, the scheduler offers availability-aware placement —
// earliest-finish-time site/host selection over estimated host-free
// timelines, with a shared cross-application load ledger so concurrently
// scheduled applications spread around each other's in-flight placements —
// and an incremental event-driven makespan simulator (near-linear in
// tasks and links on realistic allocations) that scores allocation
// tables at scale. Both are opt-in; the paper-faithful
// algorithms remain the defaults and the evaluation baselines.
//
// See README.md for the architecture overview, the per-experiment index,
// and how to run the benchmarks. The root-level bench_test.go wraps each
// experiment in a testing.B benchmark.
package repro
