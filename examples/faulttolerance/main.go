// Fault tolerance: hosts fail after the scheduler has placed work on them,
// and the Runtime System recovers on two levels — a whole-frontier re-plan
// through the site's configured re-planner (scheduler.Replanners: full HEFT
// rescan, EFT patching, or duplication) backed by the per-task rescheduling
// request of §2.3.1, then, once a monitoring round has reported the
// failures, schedules that avoid the dead hosts outright ("the machine is
// marked as 'down' ... to prevent further task mappings").
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"repro/internal/core"
	"repro/internal/site"
	"repro/internal/vis"
	"repro/internal/workload"
)

func main() {
	env := core.NewEnvironment(core.Options{
		Seed:       13,
		SiteConfig: site.Config{Replanner: "eft"}, // the frontier re-planner executions run
	})
	m, err := env.AddSite("syracuse", 6)
	if err != nil {
		log.Fatal(err)
	}

	g, err := workload.LinearSolver(nil, 128, 2, false, 0)
	if err != nil {
		log.Fatal(err)
	}

	// Run once on the healthy site.
	res, table, err := env.Submit(context.Background(), "syracuse", g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Healthy run:")
	fmt.Print(vis.ApplicationPerformance(res))

	// Fail the hosts the scheduler liked best — without telling the
	// repository, so the next schedule walks straight into them and the
	// runtime has to recover mid-flight.
	victims := map[string]bool{}
	for _, a := range table.Entries {
		victims[a.Host] = true
	}
	used := make([]string, 0, len(victims))
	for h := range victims {
		used = append(used, h)
	}
	sort.Strings(used)
	if len(used) > 2 {
		used = used[:2] // keep some survivors
	}
	fmt.Println("\nFailing hosts mid-flight:")
	for _, h := range used {
		fmt.Printf("  %s goes down\n", h)
		m.Pool.Get(h).SetDown(true)
	}

	res2, _, err := env.Submit(context.Background(), "syracuse", g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nRun with failures (note the reschedule annotations):")
	fmt.Print(vis.ApplicationPerformance(res2))
	fmt.Printf("\nFrontier re-plans: %d, per-task reschedules: %d — residual still %.3g\n",
		res2.FrontierReplans, res2.Rescheduled, res2.Outputs["check"].Scalar)

	// The monitoring plane catches up: after a Group Manager round the
	// repository knows, prediction-cache entries for the dead hosts are
	// evicted, and future schedules avoid them without any runtime retries.
	// internal/core's TestMonitorRoundExcludesDownHostsFromPlacement pins
	// this as a regression test; the example just demonstrates it.
	env.TickMonitors()
	res3, table3, err := env.Submit(context.Background(), "syracuse", g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAfter a monitoring round: %d reschedules (repository already knew)\n", res3.Rescheduled)
	fmt.Println("Placement now avoids the failed hosts:")
	for _, id := range table3.Order() {
		a := table3.Entries[id]
		if m.Pool.Get(a.Host).IsDown() {
			log.Fatalf("task %s placed on down host %s", id, a.Host)
		}
		fmt.Printf("  %-8s -> %s\n", id, a.Host)
	}
}
