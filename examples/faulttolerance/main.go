// Fault tolerance: hosts fail after the scheduler has placed work on them,
// and the Runtime System's Application Controller discovers the failures,
// requests rescheduling from the site, and completes the application on the
// survivors — the paper's §2.3.1 failure path ("the machine is marked as
// 'down' ... to prevent further task mappings").
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"repro/internal/core"
	"repro/internal/vis"
	"repro/internal/workload"
)

func main() {
	env := core.NewEnvironment(core.Options{Seed: 13})
	m, err := env.AddSite("syracuse", 6)
	if err != nil {
		log.Fatal(err)
	}

	g, err := workload.LinearSolver(nil, 128, 2, false, 0)
	if err != nil {
		log.Fatal(err)
	}

	// Run once on the healthy site.
	res, table, err := env.Submit(context.Background(), "syracuse", g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Healthy run:")
	fmt.Print(vis.ApplicationPerformance(res))

	// Fail the hosts the scheduler liked best — without telling the
	// repository, so the next schedule walks straight into them.
	victims := map[string]bool{}
	for _, a := range table.Entries {
		victims[a.Host] = true
	}
	used := make([]string, 0, len(victims))
	for h := range victims {
		used = append(used, h)
	}
	sort.Strings(used)
	if len(used) > 2 {
		used = used[:2] // keep some survivors
	}
	fmt.Println("\nFailing hosts mid-flight:")
	for _, h := range used {
		fmt.Printf("  %s goes down\n", h)
		m.Pool.Get(h).SetDown(true)
	}

	res2, _, err := env.Submit(context.Background(), "syracuse", g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nRun with failures (note the reschedule annotations):")
	fmt.Print(vis.ApplicationPerformance(res2))
	fmt.Printf("\nReschedule events: %d — residual still %.3g\n",
		res2.Rescheduled, res2.Outputs["check"].Scalar)

	// The monitoring plane catches up: after a Group Manager round the
	// repository knows, and future schedules avoid the dead hosts without
	// any runtime retries.
	env.TickMonitors()
	res3, table3, err := env.Submit(context.Background(), "syracuse", g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAfter a monitoring round: %d reschedules (repository already knew)\n", res3.Rescheduled)
	fmt.Println("Placement now avoids the failed hosts:")
	for _, id := range table3.Order() {
		a := table3.Entries[id]
		down := ""
		if m.Pool.Get(a.Host).IsDown() {
			down = "  <-- BUG"
		}
		fmt.Printf("  %-8s -> %s%s\n", id, a.Host, down)
	}
}
