// Policies: the pluggable scheduling-policy API. Every scheduling
// heuristic — the paper-faithful Site Scheduler, its earliest-finish-time
// variants, the HEFT and CPOP list heuristics of Topcuoglu et al., and the
// naive baselines — registers under a name and is selected as data:
//
//	p, _ := scheduler.Lookup("heft")
//	table, _ := p.Schedule(ctx, scheduler.NewRequest(g, local, remotes, net))
//
// This example compares HEFT vs CPOP vs EFT selected by name on the
// 6×1000-task / 32-site workload (combined simulated makespan — every
// application replayed against the same host pool at once), then shows the
// registry's unknown-name error, which lists what IS registered.
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/scheduler"
)

func main() {
	fmt.Printf("registered policies: %v\n\n", scheduler.Policies())

	names := []string{"cpop", "eft", "heft"} // comparison rows come back sorted
	res, err := experiments.PolicyComparisonFor(1, names)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n\n", res.Series.Title)
	for i, row := range res.Series.Rows {
		fmt.Printf("  %-10s combined makespan %8.1f s   (scheduled in %.2f s)\n",
			names[i], row[1], row[2])
	}

	if _, err := scheduler.Lookup("my-heuristic"); err != nil {
		fmt.Printf("\nunknown policy error:\n  %v\n", err)
	}
}
