// Ranking: the paper's evaluation methodology on a parametric DAG grid.
// Every registered scheduling policy is scored across task-count × CCR
// cells of seeded random graphs (internal/dagen) by Schedule Length Ratio —
// makespan over the critical-path lower bound, 1.0 being unbeatable — and
// speedup over the best serial host, with pairwise best-result counts
// aggregated across the whole grid. Every schedule is audited by the
// independent validator before it is scored.
//
// The point of the grid (vs the single-workload POLICY comparison): the
// heuristic ranking flips with the regime. Watch the SLR columns — HEFT and
// CPOP lead at low CCR, while at CCR = 5 the communication-blind baselines
// collapse and even "fastest" (everything on one machine, zero transfers)
// becomes competitive.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"repro/internal/experiments"
)

func main() {
	workers := flag.Int("workers", 0, "grid worker-pool size; results are bit-identical for any value (0 = GOMAXPROCS, 1 = serial)")
	flag.Parse()

	cfg := experiments.DefaultRankingConfig(1)
	cfg.Workers = *workers
	res, err := experiments.RankingWith(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n\n", res.Series.Title)
	fmt.Print(res.Series.Render())

	type agg struct {
		name               string
		slr, speedup, best float64
	}
	var rows []agg
	for name := range res.Metrics {
		if len(name) > 4 && name[:4] == "slr_" {
			p := name[4:]
			rows = append(rows, agg{
				name:    p,
				slr:     res.Metrics["slr_"+p],
				speedup: res.Metrics["speedup_"+p],
				best:    res.Metrics["best_"+p],
			})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].slr != rows[j].slr {
			return rows[i].slr < rows[j].slr
		}
		return rows[i].name < rows[j].name
	})
	fmt.Printf("\nacross all %d runs (better SLR first):\n", int(res.Metrics["runs"]))
	fmt.Printf("  %-12s %8s %9s %6s\n", "policy", "SLR", "speedup", "best")
	for _, r := range rows {
		fmt.Printf("  %-12s %8.3f %9.3f %6d\n", r.name, r.slr, r.speedup, int(r.best))
	}
	fmt.Printf("\npairwise: HEFT beats CPOP in %d runs, CPOP beats HEFT in %d (rest ties)\n",
		int(res.Metrics["wins_heft_vs_cpop"]), int(res.Metrics["wins_cpop_vs_heft"]))
}
