// A C3I (command, control, communication, and information) scenario across
// three VDCE sites: two sensor clusters are fused, the fused tracks are
// correlated for association, and the primary track is scored for threat —
// the application family the paper's C3I task library targets (the Rome
// Laboratory use case). Also demonstrates the workload visualization
// service over the sites' resource-performance databases.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/vis"
	"repro/internal/workload"
)

func main() {
	env := core.NewEnvironment(core.Options{Seed: 11})
	for _, site := range []string{"syracuse", "rome", "nyc"} {
		if _, err := env.AddSite(site, 4); err != nil {
			log.Fatal(err)
		}
	}
	// A few monitoring rounds so the repositories hold fresh loads.
	for i := 0; i < 5; i++ {
		env.TickMonitors()
	}

	fmt.Println("Workload visualization (per site):")
	for _, name := range env.Sites() {
		m, err := env.Site(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("-- %s --\n%s", name, vis.Workload(m.Repo.Resources.List()))
	}

	g, err := workload.C3IScenario(nil, 6, 2048, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSubmitting %q (%d tasks) at rome\n\n", g.Name, g.Len())
	res, table, err := env.Submit(context.Background(), "rome", g)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Placement:")
	for _, id := range table.Order() {
		a := table.Entries[id]
		fmt.Printf("  %-10s -> %s/%s\n", id, a.Site, a.Host)
	}
	fmt.Println()
	fmt.Print(vis.ApplicationPerformance(res))

	corr := res.Outputs["correlate"].Scalar
	threat := res.Outputs["threat"].Scalar
	fmt.Printf("\nTrack correlation: %.3f  (≈1 ⇒ both clusters see the same target)\n", corr)
	fmt.Printf("Threat score:      %.2f ", threat)
	switch {
	case threat > 3:
		fmt.Println("— HIGH: fast-closing target")
	case threat > 0.5:
		fmt.Println("— elevated")
	default:
		fmt.Println("— nominal")
	}
}
