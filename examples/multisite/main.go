// Multi-site over real RPC: two Site Managers serve on TCP ports inside
// this process, coordinate scheduling through the Site.SelectHosts
// endpoint, and execute cross-site through Site.RunTask — the same wire
// path as two separate vdce-server processes (see cmd/vdce-server for the
// multi-process variant).
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/netsim"
	"repro/internal/resource"
	"repro/internal/site"
	"repro/internal/vis"
	"repro/internal/workload"
)

func main() {
	net := netsim.NYNET(0.001) // syracuse–rome–nyc ATM WAN, compressed 1000x

	// Stand up two sites; rome gets the stronger machines.
	syr, err := site.NewManager("syracuse",
		resource.GenerateSite("syracuse", 3, 2, 101), net, nil, site.Config{})
	if err != nil {
		log.Fatal(err)
	}
	rome, err := site.NewManager("rome",
		resource.GenerateSite("rome", 5, 6, 202), net, nil, site.Config{})
	if err != nil {
		log.Fatal(err)
	}
	syr.TickMonitors()
	rome.TickMonitors()

	// rome serves its Host Selection + RunTask endpoints on a real socket.
	addr, stop, err := rome.Serve("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer stop()
	peer := site.NewRemoteSelector("rome", addr)
	defer peer.Close()
	fmt.Printf("rome site serving RPC on %s\n", addr)

	// Submit at syracuse; the scheduler multicasts the AFG to rome over
	// RPC and the runtime forwards remote tasks through Site.RunTask.
	g, err := workload.LinearSolver(nil, 192, 4, false, 0)
	if err != nil {
		log.Fatal(err)
	}
	res, table, err := syr.ExecuteDistributed(context.Background(), g, []*site.RemoteSelector{peer})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nPlacement across sites:")
	remoteTasks := 0
	for _, id := range table.Order() {
		a := table.Entries[id]
		marker := ""
		if a.Site == "rome" {
			marker = "  (executed over RPC)"
			remoteTasks++
		}
		fmt.Printf("  %-8s -> %s/%s%s\n", id, a.Site, a.Host, marker)
	}
	fmt.Println()
	fmt.Print(vis.ApplicationPerformance(res))
	fmt.Printf("\n%d of %d tasks ran at the remote site; residual %.3g\n",
		remoteTasks, g.Len(), res.Outputs["check"].Scalar)
}
