// Shared-memory paradigm (the paper's stated future work, §3): tasks
// cooperate through named DSM regions instead of dataflow links. A producer
// publishes a matrix into the region "A"; worker nodes — one in-process
// with push invalidation, one attached over TCP RPC — each read it, solve
// against their own right-hand side, and publish results back.
package main

import (
	"fmt"
	"log"

	"repro/internal/dsm"
	"repro/internal/matrix"
	"repro/internal/tasklib"
)

func main() {
	home := dsm.NewHome()
	addr, stop, err := home.Serve("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer stop()
	fmt.Printf("DSM home serving on %s\n", addr)

	// Producer: build a 64×64 system and publish it.
	producer := dsm.NewNode(home, dsm.Push)
	defer producer.Close()
	a := matrix.Identity(64)
	for i := 0; i < 64; i++ {
		a.Set(i, i, float64(i+2))
	}
	blob, err := tasklib.MatrixValue(a).Encode()
	if err != nil {
		log.Fatal(err)
	}
	if err := producer.Write("A", blob); err != nil {
		log.Fatal(err)
	}
	fmt.Println("producer published region A (64x64 matrix)")

	// Two workers: one local (push invalidation), one over RPC
	// (validate-on-read) — the cross-site sharer.
	remote := dsm.DialHome(addr)
	defer remote.Close()
	workers := []struct {
		name string
		node *dsm.Node
	}{
		{"local-push", dsm.NewNode(home, dsm.Push)},
		{"remote-rpc", dsm.NewNode(remote, dsm.Validate)},
	}
	for i, w := range workers {
		defer w.node.Close()
		raw, err := w.node.Read("A")
		if err != nil {
			log.Fatal(err)
		}
		val, err := tasklib.DecodeValue(raw)
		if err != nil {
			log.Fatal(err)
		}
		b := make([]float64, 64)
		for j := range b {
			b[j] = float64((i + 1) * (j + 1))
		}
		x, err := matrix.Solve(val.Matrix, b)
		if err != nil {
			log.Fatal(err)
		}
		res, err := matrix.Residual(val.Matrix, x, b)
		if err != nil {
			log.Fatal(err)
		}
		out, err := tasklib.VectorValue(x).Encode()
		if err != nil {
			log.Fatal(err)
		}
		region := fmt.Sprintf("x%d", i)
		if err := w.node.Write(region, out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("worker %-10s solved A·x=b%d, residual %.2g, published %q\n",
			w.name, i, res, region)
	}

	// The producer collects both results through the same shared memory.
	for i := range workers {
		raw, err := producer.Read(fmt.Sprintf("x%d", i))
		if err != nil {
			log.Fatal(err)
		}
		val, err := tasklib.DecodeValue(raw)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("producer read x%d: vector[%d]\n", i, len(val.Vector))
	}
	stores, fetches, stats := home.Stats()
	fmt.Printf("home traffic: %d stores, %d fetches, %d stats\n", stores, fetches, stats)
}
