// Scale: the Application Scheduler's dispatch hot path at metacomputing
// scale — a batch of 1000-task application flow graphs scheduled against 32
// sites. The serial walk (one site at a time, every prediction recomputed
// from the repositories) is raced against the concurrent subsystem: bounded
// fan-out of the Host Selection Algorithm across sites, a memoized
// prediction cache per site, and the scheduler.Batch API keeping every
// graph in flight at once. Both paths must — and do — produce identical
// allocation tables; only the wall clock differs.
package main

import (
	"fmt"
	"log"
	"runtime"

	"repro/internal/experiments"
)

func main() {
	fmt.Printf("scale: GOMAXPROCS=%d\n", runtime.GOMAXPROCS(0))
	res, err := experiments.ScaleScheduling(1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%s\n\n", res.Series.Title)
	fmt.Printf("  serial walk:     %7.3f s  (%6.0f tasks/s)\n",
		res.Metrics["serial_s"], res.Series.Rows[0][2])
	fmt.Printf("  concurrent path: %7.3f s  (%6.0f tasks/s)\n",
		res.Metrics["concurrent_s"], res.Metrics["tasks_per_s"])
	fmt.Printf("  speedup:         %7.2fx\n", res.Metrics["speedup"])
	fmt.Printf("  cache hit rate:  %7.1f%%\n", res.Metrics["cache_hit_pct"])
	fmt.Println("\nallocation tables: concurrent path identical to serial (verified)")
}
