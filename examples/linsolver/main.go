// The paper's Fig 3 walkthrough in full: the Linear Equation Solver built
// through the Application Editor's task/link/run modes, executed in both
// computational modes (sequential and parallel LU), and compared with the
// comparative visualization service.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/afg"
	"repro/internal/core"
	"repro/internal/editor"
	"repro/internal/vis"
)

const n = 256

func buildWithEditor(parallelLU bool) (*afg.Graph, error) {
	// Task mode: place tasks from the matrix-operations menu.
	b := editor.New("linear-solver", nil)
	ns := fmt.Sprintf("%d", n)
	type placement struct {
		id     afg.TaskID
		fn     string
		params map[string]string
	}
	for _, p := range []placement{
		{"genA", "matrix.generate", map[string]string{"n": ns, "seed": "1"}},
		{"genB", "matrix.vector", map[string]string{"n": ns, "seed": "2"}},
		{"lu", "matrix.lu", map[string]string{"n": ns}},
		{"solve", "matrix.solve", map[string]string{"n": ns}},
		{"check", "matrix.residual", map[string]string{"n": ns}},
	} {
		if err := b.AddTask(p.id, p.fn, p.params); err != nil {
			return nil, err
		}
	}
	// The pop-up properties panel (paper Fig 3, right): parallel mode on
	// two nodes of Solaris machines.
	if parallelLU {
		if err := b.SetProperties("lu", afg.Parallel, 2, ""); err != nil {
			return nil, err
		}
	}
	// Link mode: draw the dataflow.
	b.SetMode(editor.LinkMode)
	for _, l := range [][2]afg.TaskID{
		{"genA", "lu"}, {"lu", "solve"}, {"genB", "solve"},
		{"genA", "check"}, {"solve", "check"}, {"genB", "check"},
	} {
		if err := b.Connect(l[0], l[1]); err != nil {
			return nil, err
		}
	}
	// Run mode: validate and submit.
	b.SetMode(editor.RunMode)
	return b.Graph()
}

func main() {
	env := core.NewEnvironment(core.Options{Seed: 3})
	if _, err := env.AddSite("syracuse", 4); err != nil {
		log.Fatal(err)
	}

	var runs []vis.ComparativeRun
	for _, cfg := range []struct {
		label    string
		parallel bool
	}{
		{"sequential LU", false},
		{"parallel LU (2 nodes)", true},
	} {
		g, err := buildWithEditor(cfg.parallel)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res, _, err := env.Submit(context.Background(), "syracuse", g)
		if err != nil {
			log.Fatal(err)
		}
		runs = append(runs, vis.ComparativeRun{Label: cfg.label, Makespan: time.Since(start)})
		fmt.Printf("%-24s residual %.3g\n", cfg.label, res.Outputs["check"].Scalar)
		fmt.Print(vis.ApplicationPerformance(res))
		fmt.Println()
	}
	fmt.Print(vis.Comparative("linear-solver n=256", runs))
}
