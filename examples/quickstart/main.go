// Quickstart: build a two-site VDCE, submit the paper's Linear Equation
// Solver (Fig 3), and print where every task ran.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/vis"
	"repro/internal/workload"
)

func main() {
	// 1. Assemble the environment: two sites, four hosts each, connected
	//    by a simulated WAN (delays compressed 1000x).
	env := core.NewEnvironment(core.Options{Seed: 7})
	for _, site := range []string{"syracuse", "rome"} {
		if _, err := env.AddSite(site, 4); err != nil {
			log.Fatal(err)
		}
	}

	// 2. Build the application flow graph: solve A·x = b via LU
	//    decomposition for a 128×128 system, checked by a residual task.
	g, err := workload.LinearSolver(nil, 128, 1, false, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Application %q: %d tasks, %d links\n", g.Name, g.Len(), len(g.Links()))

	// 3. Submit at the Syracuse site: the Application Scheduler multicasts
	//    the graph, collects host selections, builds the allocation table,
	//    and the Runtime System executes it.
	res, table, err := env.Submit(context.Background(), "syracuse", g)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Inspect the outcome.
	fmt.Println("\nResource allocation table:")
	for _, id := range table.Order() {
		a := table.Entries[id]
		fmt.Printf("  %-8s -> %s/%s (predicted %.4gs)\n", id, a.Site, a.Host, a.Predicted)
	}
	fmt.Println()
	fmt.Print(vis.ApplicationPerformance(res))
	fmt.Printf("\nResidual ‖A·x − b‖∞ = %.3g (zero means the answer is right)\n",
		res.Outputs["check"].Scalar)
}
