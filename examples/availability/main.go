// Availability: what the scheduler's objective can and cannot see. A batch
// of 1000-task application flow graphs is scheduled against 32 sites three
// ways — the paper-faithful objective (predicted + transfer, every
// application blind to the others), earliest-finish-time placement with
// per-application host timelines, and earliest-finish-time with one shared
// cross-application load ledger — and every configuration is scored by
// replaying ALL applications against the same host pool in one combined
// simulation. The faithful batch dog-piles the fastest machines an order
// of magnitude deep; the ledger is what removes the contention between
// applications that no per-application walk can see.
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
)

func main() {
	res, err := experiments.AvailabilityScheduling(1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s\n\n", res.Series.Title)
	names := map[float64]string{
		1: "paper-faithful (ledger-free batch)",
		2: "availability-aware, private timelines",
		3: "availability-aware + shared ledger",
	}
	for _, row := range res.Series.Rows {
		name := names[row[0]]
		if name == "" {
			name = fmt.Sprintf("config %g", row[0])
		}
		fmt.Printf("  %-38s combined makespan %8.1f s   (scheduled in %.2f s)\n",
			name, row[1], row[2])
	}
	fmt.Printf("\n  shared ledger vs faithful batch:  %5.1fx shorter\n",
		res.Metrics["ledger_over_faithful"])
	fmt.Printf("  shared ledger vs private EFT:     %5.1f%% shorter\n",
		res.Metrics["ledger_improvement_pct"])
}
